//! Figure 4 — the performance of the client-side computations
//! (signature validation + generalization at application start-up).
//!
//! "For each application, we measure the time it takes to start and
//! immediately shut down. [...] For up to 1,000 new signatures in the
//! local repository, the Communix agent incurs a startup delay of up to
//! 2-3 seconds, i.e., 11-16% startup slowdown." Four configurations per
//! application (JBoss, Vuze, Limewire): vanilla, Dimmunix, Communix
//! agent with N new signatures, and the agent with no new signatures.
//!
//! Reproduction: applications are profile-generated to Table I's
//! statistics; "start-up" is modelled as the work the JVM and Dimmunix
//! actually repeat each start (class loading → lowering + bytecode
//! hashing; history load → parse + matcher build), and the agent's added
//! cost is measured directly by running its real pipeline over N
//! application-valid signatures. The nesting analysis is precomputed, as
//! in the paper (it runs at first shutdown, not in the measured window).
//!
//! Run: `cargo run -p communix-bench --release --bin fig4 [--scale 1.0]`

use std::collections::HashMap;
use std::time::{Duration, Instant};

use communix_agent::{AgentConfig, CommunixAgent};
use communix_bench::{arg_value, banner, fmt_dur, fmt_pct, row};
use communix_bytecode::LoweredProgram;
use communix_client::LocalRepository;
use communix_crypto::Digest;
use communix_dimmunix::History;
use communix_workloads::{SigGen, ALL_PROFILES};

fn main() {
    banner(
        "Figure 4 — agent start-up cost (validation + generalization)",
        "≤ 2-3 s extra (11-16% slowdown) at 1,000 new signatures; flat without new sigs",
    );
    let scale: f64 = arg_value("--scale")
        .map(|s| s.parse().expect("--scale takes a float"))
        .unwrap_or(1.0);
    println!("profile scale: {scale} (1.0 = full Table I statistics)\n");

    let sig_counts = [10usize, 100, 1_000, 10_000];

    for profile in ALL_PROFILES {
        let profile = profile.scaled(scale);
        let program = profile.generate();

        // Vanilla start-up: what every start repeats — class loading
        // (lowering) and bytecode hashing.
        let t0 = Instant::now();
        let lowered = LoweredProgram::lower(&program);
        let hash_index = program.hash_index();
        let vanilla = t0.elapsed();

        let hashes: HashMap<String, Digest> = hash_index
            .into_iter()
            .map(|(k, v)| (k.as_str().to_string(), v))
            .collect();

        // Precompute the nesting analysis (paper: at first shutdown).
        let mut agent = CommunixAgent::new(AgentConfig::default());
        let analysis_time = agent.run_nesting_analysis(&lowered);

        let mut gen = SigGen::new(0xF164);
        let report = agent.nesting().expect("analysis ran");
        let texts =
            gen.valid_remote_sig_texts(&program, report, *sig_counts.last().expect("non-empty"));

        // Dimmunix start-up: vanilla + loading a learned history (use
        // the history the largest batch generalizes into).
        let settled_history = {
            let mut repo = LocalRepository::in_memory();
            repo.append(texts.iter().cloned()).expect("in-memory");
            let mut h = History::new();
            agent.startup(&hashes, &mut repo, &mut h);
            h
        };
        let history_text = settled_history.to_text();
        let t0 = Instant::now();
        let reparsed = History::from_text(&history_text).expect("own text");
        let dimmunix = vanilla + t0.elapsed();
        assert_eq!(reparsed.len(), settled_history.len());

        println!(
            "{} ({} LOC, {} sync sites, {} nested; nesting analysis {} — precomputed)",
            profile.name,
            profile.loc,
            profile.sync_sites,
            profile.nested,
            fmt_dur(analysis_time),
        );
        row(&[
            "new sigs in repo",
            "vanilla",
            "dimmunix",
            "agent",
            "agent(no new)",
            "slowdown",
        ]);
        for &n in &sig_counts {
            let mut repo = LocalRepository::in_memory();
            repo.append(texts[..n].to_vec()).expect("in-memory");
            let mut history = History::new();
            let rep = agent.startup(&hashes, &mut repo, &mut history);
            assert_eq!(rep.inspected, n);
            assert_eq!(rep.rejected, 0, "all generated signatures validate");
            let agent_total = vanilla + rep.elapsed;

            // No-new-signatures start: everything already inspected.
            let rep2 = agent.startup(&hashes, &mut repo, &mut history);
            assert_eq!(rep2.inspected, 0);
            let agent_idle = vanilla + rep2.elapsed;

            row(&[
                &format!("{n}"),
                &fmt_dur(vanilla),
                &fmt_dur(dimmunix),
                &fmt_dur(agent_total),
                &fmt_dur(agent_idle),
                &fmt_pct(
                    (agent_total.as_secs_f64() - vanilla.as_secs_f64()) / vanilla.as_secs_f64(),
                ),
            ]);
        }

        // §IV-A in-text check: 1,000 signatures in 2-3 seconds (ours
        // should be far faster; flag if it is ever slower).
        let mut repo = LocalRepository::in_memory();
        repo.append(texts[..1_000].to_vec()).expect("in-memory");
        let mut history = History::new();
        let rep = agent.startup(&hashes, &mut repo, &mut history);
        println!(
            "  -> 1,000 new signatures validated + generalized in {} (paper: 2-3 s), {} history entries\n",
            fmt_dur(rep.elapsed),
            history.len(),
        );
        let _ = Duration::ZERO;
    }
}
