//! Call-graph construction and the transitive "may synchronize" summary.

use std::collections::{BTreeMap, BTreeSet};

use communix_bytecode::{Instr, LoweredProgram, MethodRef};

/// Whether a method may acquire a monitor, directly or transitively.
///
/// Three-valued: opaque methods (no retrievable CFG) poison the summary
/// with [`SyncEffect::Unknown`], exactly like Soot's analysis failures in
/// the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SyncEffect {
    /// The method (or something it may call) definitely acquires a monitor.
    Syncs,
    /// No acquisition anywhere in the transitive closure.
    DoesNotSync,
    /// Cannot tell: an opaque or unresolvable method is reachable.
    Unknown,
}

/// A direct + transitive call graph over a lowered program.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Direct callees per method.
    direct: BTreeMap<MethodRef, BTreeSet<MethodRef>>,
    /// Transitive sync-effect summary per method.
    effects: BTreeMap<MethodRef, SyncEffect>,
}

impl CallGraph {
    /// Builds the call graph and sync-effect summary for `program`.
    pub fn build(program: &LoweredProgram) -> Self {
        let mut direct: BTreeMap<MethodRef, BTreeSet<MethodRef>> = BTreeMap::new();
        // Per-method local facts.
        let mut local_syncs: BTreeMap<MethodRef, bool> = BTreeMap::new();
        let mut opaque: BTreeSet<MethodRef> = BTreeSet::new();

        for m in program.methods() {
            let mut callees = BTreeSet::new();
            let mut syncs = false;
            for instr in &m.code {
                match instr {
                    Instr::Call { target, .. } => {
                        callees.insert(target.clone());
                    }
                    Instr::MonitorEnter { .. } => syncs = true,
                    _ => {}
                }
            }
            if m.opaque {
                opaque.insert(m.mref.clone());
            }
            local_syncs.insert(m.mref.clone(), syncs);
            direct.insert(m.mref.clone(), callees);
        }

        // Fixpoint: propagate Syncs and Unknown along call edges. Effects
        // only increase in the lattice DoesNotSync < Unknown < Syncs, so
        // iteration terminates.
        let mut effects: BTreeMap<MethodRef, SyncEffect> = BTreeMap::new();
        for (mref, syncs) in &local_syncs {
            let eff = if opaque.contains(mref) {
                // An opaque method's body is invisible; even if our model
                // knows it syncs, the analyzer must not.
                SyncEffect::Unknown
            } else if *syncs {
                SyncEffect::Syncs
            } else {
                SyncEffect::DoesNotSync
            };
            effects.insert(mref.clone(), eff);
        }

        loop {
            let mut changed = false;
            for (caller, callees) in &direct {
                if opaque.contains(caller) {
                    continue; // stays Unknown regardless of callees
                }
                let mut eff = effects[caller];
                if eff == SyncEffect::Syncs {
                    continue;
                }
                for callee in callees {
                    match effects.get(callee) {
                        Some(SyncEffect::Syncs) => {
                            eff = SyncEffect::Syncs;
                            break;
                        }
                        Some(SyncEffect::Unknown) | None => {
                            // Unresolvable call sites are Unknown too.
                            if eff == SyncEffect::DoesNotSync {
                                eff = SyncEffect::Unknown;
                            }
                        }
                        Some(SyncEffect::DoesNotSync) => {}
                    }
                }
                if eff != effects[caller] {
                    effects.insert(caller.clone(), eff);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        CallGraph { direct, effects }
    }

    /// Direct callees of `m` (empty if unknown method).
    pub fn callees(&self, m: &MethodRef) -> impl Iterator<Item = &MethodRef> {
        self.direct.get(m).into_iter().flatten()
    }

    /// The transitive sync-effect of calling `m`. Unresolvable methods are
    /// [`SyncEffect::Unknown`].
    pub fn sync_effect(&self, m: &MethodRef) -> SyncEffect {
        self.effects.get(m).copied().unwrap_or(SyncEffect::Unknown)
    }

    /// All methods reachable from `m` (inclusive), following direct edges.
    pub fn reachable_from(&self, m: &MethodRef) -> BTreeSet<MethodRef> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![m.clone()];
        while let Some(cur) = stack.pop() {
            if !seen.insert(cur.clone()) {
                continue;
            }
            if let Some(callees) = self.direct.get(&cur) {
                for c in callees {
                    if !seen.contains(c) {
                        stack.push(c.clone());
                    }
                }
            }
        }
        seen
    }

    /// Number of methods in the graph.
    pub fn len(&self) -> usize {
        self.direct.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.direct.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use communix_bytecode::{LockExpr, ProgramBuilder};

    fn graph(build: impl FnOnce(&mut ProgramBuilder)) -> CallGraph {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        CallGraph::build(&LoweredProgram::lower(&b.build()))
    }

    #[test]
    fn direct_sync_detected() {
        let g = graph(|b| {
            b.class("a.A")
                .plain_method("syncs", |s| {
                    s.sync(LockExpr::global("L"), |_| {});
                })
                .plain_method("pure", |s| {
                    s.work(1);
                })
                .done();
        });
        assert_eq!(
            g.sync_effect(&MethodRef::new("a.A", "syncs")),
            SyncEffect::Syncs
        );
        assert_eq!(
            g.sync_effect(&MethodRef::new("a.A", "pure")),
            SyncEffect::DoesNotSync
        );
    }

    #[test]
    fn synchronized_method_counts_as_sync() {
        let g = graph(|b| {
            b.class("a.A").sync_method("m", |_| {}).done();
        });
        assert_eq!(
            g.sync_effect(&MethodRef::new("a.A", "m")),
            SyncEffect::Syncs
        );
    }

    #[test]
    fn transitive_sync_propagates() {
        let g = graph(|b| {
            b.class("a.A")
                .plain_method("top", |s| {
                    s.call("a.A", "mid");
                })
                .plain_method("mid", |s| {
                    s.call("a.A", "bottom");
                })
                .plain_method("bottom", |s| {
                    s.sync(LockExpr::global("L"), |_| {});
                })
                .done();
        });
        assert_eq!(
            g.sync_effect(&MethodRef::new("a.A", "top")),
            SyncEffect::Syncs
        );
    }

    #[test]
    fn opaque_method_is_unknown_even_if_it_syncs() {
        let g = graph(|b| {
            b.class("a.A")
                .opaque_method("native0", |s| {
                    s.sync(LockExpr::global("L"), |_| {});
                })
                .done();
        });
        assert_eq!(
            g.sync_effect(&MethodRef::new("a.A", "native0")),
            SyncEffect::Unknown
        );
    }

    #[test]
    fn call_to_opaque_poisons_caller() {
        let g = graph(|b| {
            b.class("a.A")
                .plain_method("caller", |s| {
                    s.call("a.A", "native0");
                })
                .opaque_method("native0", |_| {})
                .done();
        });
        assert_eq!(
            g.sync_effect(&MethodRef::new("a.A", "caller")),
            SyncEffect::Unknown
        );
    }

    #[test]
    fn syncs_dominates_unknown() {
        // caller → {opaque, syncing}: a definite sync wins over Unknown.
        let g = graph(|b| {
            b.class("a.A")
                .plain_method("caller", |s| {
                    s.call("a.A", "native0").call("a.A", "syncs");
                })
                .opaque_method("native0", |_| {})
                .plain_method("syncs", |s| {
                    s.sync(LockExpr::global("L"), |_| {});
                })
                .done();
        });
        assert_eq!(
            g.sync_effect(&MethodRef::new("a.A", "caller")),
            SyncEffect::Syncs
        );
    }

    #[test]
    fn unresolvable_callee_is_unknown() {
        let g = graph(|b| {
            b.class("a.A")
                .plain_method("caller", |s| {
                    s.call("ghost.G", "nothing");
                })
                .done();
        });
        assert_eq!(
            g.sync_effect(&MethodRef::new("a.A", "caller")),
            SyncEffect::Unknown
        );
        assert_eq!(
            g.sync_effect(&MethodRef::new("ghost.G", "nothing")),
            SyncEffect::Unknown
        );
    }

    #[test]
    fn recursion_terminates() {
        let g = graph(|b| {
            b.class("a.A")
                .plain_method("f", |s| {
                    s.call("a.A", "g");
                })
                .plain_method("g", |s| {
                    s.call("a.A", "f");
                })
                .done();
        });
        assert_eq!(
            g.sync_effect(&MethodRef::new("a.A", "f")),
            SyncEffect::DoesNotSync
        );
    }

    #[test]
    fn recursive_cycle_with_sync() {
        let g = graph(|b| {
            b.class("a.A")
                .plain_method("f", |s| {
                    s.call("a.A", "g");
                })
                .plain_method("g", |s| {
                    s.call("a.A", "f").sync(LockExpr::global("L"), |_| {});
                })
                .done();
        });
        assert_eq!(
            g.sync_effect(&MethodRef::new("a.A", "f")),
            SyncEffect::Syncs
        );
        assert_eq!(
            g.sync_effect(&MethodRef::new("a.A", "g")),
            SyncEffect::Syncs
        );
    }

    #[test]
    fn reachability() {
        let g = graph(|b| {
            b.class("a.A")
                .plain_method("f", |s| {
                    s.call("a.A", "g");
                })
                .plain_method("g", |_| {})
                .plain_method("island", |_| {})
                .done();
        });
        let r = g.reachable_from(&MethodRef::new("a.A", "f"));
        assert!(r.contains(&MethodRef::new("a.A", "g")));
        assert!(!r.contains(&MethodRef::new("a.A", "island")));
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
    }

    #[test]
    fn callees_listed() {
        let g = graph(|b| {
            b.class("a.A")
                .plain_method("f", |s| {
                    s.call("a.A", "g").call("a.A", "h");
                })
                .plain_method("g", |_| {})
                .plain_method("h", |_| {})
                .done();
        });
        let callees: Vec<_> = g.callees(&MethodRef::new("a.A", "f")).collect();
        assert_eq!(callees.len(), 2);
    }
}
