//! Minimal achievable stack depths per synchronized site — the analysis
//! behind the paper's *adaptive depth threshold* alternative (§III-C1):
//!
//! > "Alternatively, one could compute the minimal depth d that outer
//! > call stacks corresponding to a nested synchronized block/method can
//! > have; the threshold would be min(d, 5), rather than 5, in this
//! > case."
//!
//! The fixed depth-≥5 rule wrongly rejects honest signatures whose outer
//! lock statements simply *cannot* be reached five frames deep (e.g. a
//! nested block directly inside a thread's entry method). The adaptive
//! rule lowers the threshold to what is achievable, per site, without
//! weakening the DoS bound anywhere a deeper stack is possible.
//!
//! Entry points are modelled as call-graph roots — methods no other
//! method calls (Java: `main`, `Runnable.run`, event handlers). A site
//! in a root method can be reached with a depth-1 stack; each
//! unavoidable call frame below adds one.

use std::collections::{BTreeMap, VecDeque};

use communix_bytecode::{LoweredProgram, MethodRef, SyncSite};

use crate::callgraph::CallGraph;

/// Minimal runtime stack depth per synchronized site.
///
/// Sites whose methods are unreachable from every entry point (they only
/// appear inside call cycles with no external entry) are *absent* from
/// the map; callers should fall back to the fixed threshold for them.
#[derive(Debug, Clone, Default)]
pub struct MinDepths {
    per_site: BTreeMap<SyncSite, usize>,
}

impl MinDepths {
    /// Computes minimal depths for every synchronized site of `program`.
    pub fn compute(program: &LoweredProgram, callgraph: &CallGraph) -> Self {
        // dist(m) = minimal number of activation frames on a stack whose
        // innermost frame is in m: 1 for entry points (roots), 1 + min
        // over callers otherwise. Multi-source BFS from the roots along
        // call edges (caller → callee, each edge adds one frame).
        let methods: Vec<MethodRef> = program.methods().map(|m| m.mref.clone()).collect();
        let mut has_caller: BTreeMap<&MethodRef, bool> =
            methods.iter().map(|m| (m, false)).collect();
        for m in &methods {
            for callee in callgraph.callees(m) {
                if let Some(flag) = has_caller.get_mut(callee) {
                    *flag = true;
                }
            }
        }

        let mut dist: BTreeMap<MethodRef, usize> = BTreeMap::new();
        let mut queue: VecDeque<MethodRef> = VecDeque::new();
        for m in &methods {
            if !has_caller[m] {
                dist.insert(m.clone(), 1);
                queue.push_back(m.clone());
            }
        }
        while let Some(m) = queue.pop_front() {
            let d = dist[&m];
            for callee in callgraph.callees(&m) {
                if !dist.contains_key(callee) {
                    dist.insert(callee.clone(), d + 1);
                    queue.push_back(callee.clone());
                }
            }
        }

        // A site's minimal stack depth equals its method's minimal
        // activation depth: the sync-site frame replaces the method's
        // own frame at the top of the stack.
        let mut per_site = BTreeMap::new();
        for m in program.methods() {
            let Some(&d) = dist.get(&m.mref) else {
                continue;
            };
            for (_, site) in m.monitor_enters() {
                per_site.insert(site.clone(), d);
            }
        }
        MinDepths { per_site }
    }

    /// The minimal achievable depth at `site`, if its method is reachable
    /// from an entry point.
    pub fn of(&self, site: &SyncSite) -> Option<usize> {
        self.per_site.get(site).copied()
    }

    /// The paper's adaptive threshold for `site`: `min(d, cap)`, falling
    /// back to `cap` when the minimal depth is unknown.
    pub fn threshold(&self, site: &SyncSite, cap: usize) -> usize {
        self.of(site).map_or(cap, |d| d.min(cap))
    }

    /// Number of sites with a known minimal depth.
    pub fn len(&self) -> usize {
        self.per_site.len()
    }

    /// Whether no site has a known minimal depth.
    pub fn is_empty(&self) -> bool {
        self.per_site.is_empty()
    }

    /// Iterates `(site, min_depth)` pairs in site order.
    pub fn iter(&self) -> impl Iterator<Item = (&SyncSite, usize)> {
        self.per_site.iter().map(|(s, d)| (s, *d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use communix_bytecode::{LockExpr, ProgramBuilder};

    fn depths(build: impl FnOnce(&mut ProgramBuilder)) -> (MinDepths, LoweredProgram) {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        let lowered = LoweredProgram::lower(&b.build());
        let cg = CallGraph::build(&lowered);
        (MinDepths::compute(&lowered, &cg), lowered)
    }

    fn site_in(lowered: &LoweredProgram, method: &str) -> SyncSite {
        for m in lowered.methods() {
            if m.mref.method_name() == method {
                if let Some((_, site)) = m.monitor_enters().into_iter().next() {
                    return site.clone();
                }
            }
        }
        panic!("no sync site in {method}");
    }

    #[test]
    fn site_in_entry_method_has_depth_one() {
        let (d, lowered) = depths(|b| {
            b.class("a.A")
                .plain_method("entry", |s| {
                    s.sync(LockExpr::global("L"), |_| {});
                })
                .done();
        });
        assert_eq!(d.of(&site_in(&lowered, "entry")), Some(1));
        assert_eq!(d.threshold(&site_in(&lowered, "entry"), 5), 1);
    }

    #[test]
    fn depth_counts_unavoidable_call_frames() {
        let (d, lowered) = depths(|b| {
            b.class("a.A")
                .plain_method("entry", |s| {
                    s.call("a.A", "mid");
                })
                .plain_method("mid", |s| {
                    s.call("a.A", "leaf");
                })
                .plain_method("leaf", |s| {
                    s.sync(LockExpr::global("L"), |_| {});
                })
                .done();
        });
        assert_eq!(d.of(&site_in(&lowered, "leaf")), Some(3));
        assert_eq!(d.threshold(&site_in(&lowered, "leaf"), 5), 3);
    }

    #[test]
    fn multiple_paths_take_the_shortest() {
        let (d, lowered) = depths(|b| {
            b.class("a.A")
                .plain_method("deepEntry", |s| {
                    s.call("a.A", "m1");
                })
                .plain_method("m1", |s| {
                    s.call("a.A", "m2");
                })
                .plain_method("m2", |s| {
                    s.call("a.A", "leaf");
                })
                .plain_method("shortEntry", |s| {
                    s.call("a.A", "leaf");
                })
                .plain_method("leaf", |s| {
                    s.sync(LockExpr::global("L"), |_| {});
                })
                .done();
        });
        assert_eq!(d.of(&site_in(&lowered, "leaf")), Some(2), "short path wins");
    }

    #[test]
    fn cycle_only_methods_fall_back_to_cap() {
        // f and g call each other; nothing else calls them… but they ARE
        // roots? No: both have callers (each other), so neither is a
        // root, and no root reaches them → unknown → threshold = cap.
        let (d, lowered) = depths(|b| {
            b.class("a.A")
                .plain_method("f", |s| {
                    s.call("a.A", "g");
                })
                .plain_method("g", |s| {
                    s.call("a.A", "f").sync(LockExpr::global("L"), |_| {});
                })
                .done();
        });
        let site = site_in(&lowered, "g");
        assert_eq!(d.of(&site), None);
        assert_eq!(d.threshold(&site, 5), 5);
    }

    #[test]
    fn deep_sites_keep_the_cap() {
        let (d, lowered) = depths(|b| {
            b.class("a.A")
                .plain_method("e", |s| {
                    s.call("a.A", "m1");
                })
                .plain_method("m1", |s| {
                    s.call("a.A", "m2");
                })
                .plain_method("m2", |s| {
                    s.call("a.A", "m3");
                })
                .plain_method("m3", |s| {
                    s.call("a.A", "m4");
                })
                .plain_method("m4", |s| {
                    s.call("a.A", "m5");
                })
                .plain_method("m5", |s| {
                    s.call("a.A", "leaf");
                })
                .plain_method("leaf", |s| {
                    s.sync(LockExpr::global("L"), |_| {});
                })
                .done();
        });
        let site = site_in(&lowered, "leaf");
        assert_eq!(d.of(&site), Some(7));
        assert_eq!(d.threshold(&site, 5), 5, "min(7, 5) = 5");
    }

    #[test]
    fn sync_method_site_gets_its_method_depth() {
        let (d, lowered) = depths(|b| {
            b.class("a.A")
                .plain_method("entry", |s| {
                    s.call("a.A", "locked");
                })
                .sync_method("locked", |s| {
                    s.work(1);
                })
                .done();
        });
        assert_eq!(d.of(&site_in(&lowered, "locked")), Some(2));
        assert!(!d.is_empty());
        assert_eq!(d.len(), 1);
    }
}
