//! The §III-C3 nesting detector.
//!
//! A synchronized block B is **nested** if some execution path acquires
//! another monitor while still holding B. The agent uses this to bound DoS
//! attacks: an attacker can only force signatures whose outer stacks end
//! in *nested* sync sites, and "typically, in a Java application there are
//! a few hundred nested synchronized blocks/methods" (§III-C1).

use std::collections::BTreeMap;
use std::time::{Duration, Instant as StdInstant};

use communix_bytecode::{Instr, LoweredProgram, SyncSite};

use crate::callgraph::{CallGraph, SyncEffect};

/// Classification of one synchronized site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Nesting {
    /// Some path acquires another monitor while holding this one.
    Nested,
    /// All paths release this monitor before any other acquisition.
    NonNested,
    /// Classification blocked by an opaque method (Soot-style CFG
    /// retrieval failure).
    NotAnalyzed,
}

/// Result of analyzing a whole program.
#[derive(Debug, Clone)]
pub struct NestingReport {
    classifications: BTreeMap<SyncSite, Nesting>,
    elapsed: Duration,
}

impl NestingReport {
    /// The classification of `site`, if the site exists in the program.
    pub fn classify(&self, site: &SyncSite) -> Option<Nesting> {
        self.classifications.get(site).copied()
    }

    /// Whether `site` was classified nested.
    pub fn is_nested(&self, site: &SyncSite) -> bool {
        self.classify(site) == Some(Nesting::Nested)
    }

    /// All nested sites.
    pub fn nested(&self) -> Vec<&SyncSite> {
        self.sites_with(Nesting::Nested)
    }

    /// All non-nested sites.
    pub fn non_nested(&self) -> Vec<&SyncSite> {
        self.sites_with(Nesting::NonNested)
    }

    /// All sites the analysis could not classify.
    pub fn not_analyzed(&self) -> Vec<&SyncSite> {
        self.sites_with(Nesting::NotAnalyzed)
    }

    fn sites_with(&self, n: Nesting) -> Vec<&SyncSite> {
        self.classifications
            .iter()
            .filter(|(_, c)| **c == n)
            .map(|(s, _)| s)
            .collect()
    }

    /// Number of sites that *could* be analyzed (nested + non-nested) —
    /// the parenthesized "Analyzed" column of Table I.
    pub fn analyzed_count(&self) -> usize {
        self.classifications
            .values()
            .filter(|c| **c != Nesting::NotAnalyzed)
            .count()
    }

    /// Total number of synchronized sites inspected.
    pub fn total_count(&self) -> usize {
        self.classifications.len()
    }

    /// Wall-clock duration of the analysis (the "Nesting check" column of
    /// Table I).
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Iterates over `(site, classification)` pairs in site order.
    pub fn iter(&self) -> impl Iterator<Item = (&SyncSite, Nesting)> {
        self.classifications.iter().map(|(s, c)| (s, *c))
    }
}

/// Analyzes the nesting of every synchronized site in a program.
#[derive(Debug)]
pub struct NestingAnalyzer<'p> {
    program: &'p LoweredProgram,
    callgraph: CallGraph,
}

impl<'p> NestingAnalyzer<'p> {
    /// Creates an analyzer (builds the call graph).
    pub fn new(program: &'p LoweredProgram) -> Self {
        NestingAnalyzer {
            program,
            callgraph: CallGraph::build(program),
        }
    }

    /// The underlying call graph.
    pub fn callgraph(&self) -> &CallGraph {
        &self.callgraph
    }

    /// Classifies every synchronized site in the program.
    pub fn analyze(&self) -> NestingReport {
        let start = StdInstant::now();
        let mut classifications = BTreeMap::new();
        for method in self.program.methods() {
            for (idx, site) in method.monitor_enters() {
                let classification = if method.opaque {
                    // The site's own method has no retrievable CFG.
                    Nesting::NotAnalyzed
                } else {
                    self.classify_block(method, idx, site)
                };
                classifications.insert(site.clone(), classification);
            }
        }
        NestingReport {
            classifications,
            elapsed: start.elapsed(),
        }
    }

    /// The paper's walk: start at the successor of the monitorenter; the
    /// first monitor operation encountered on a path decides that path
    /// (enter ⇒ nested, exit ⇒ non-nested); calls decide via the call
    /// graph summary. "Some path nested" wins; otherwise any inconclusive
    /// path makes the site NotAnalyzed.
    fn classify_block(
        &self,
        method: &communix_bytecode::LoweredMethod,
        enter_idx: usize,
        _site: &SyncSite,
    ) -> Nesting {
        let mut visited = vec![false; method.code.len()];
        let mut stack: Vec<usize> = method.successors(enter_idx);
        let mut saw_unknown = false;

        while let Some(i) = stack.pop() {
            if visited[i] {
                continue;
            }
            visited[i] = true;
            match &method.code[i] {
                Instr::MonitorEnter { .. } => return Nesting::Nested,
                Instr::MonitorExit { .. } => {
                    // This path releases a monitor first (for disciplined
                    // Java nesting, necessarily B's own exit): non-nested
                    // along this path; do not walk past it.
                    continue;
                }
                Instr::Call { target, .. } => match self.callgraph.sync_effect(target) {
                    SyncEffect::Syncs => return Nesting::Nested,
                    SyncEffect::Unknown => {
                        // Cannot see through this call; the path is
                        // inconclusive, but another path may still prove
                        // nesting, so keep walking other successors.
                        saw_unknown = true;
                        stack.extend(method.successors(i));
                    }
                    SyncEffect::DoesNotSync => stack.extend(method.successors(i)),
                },
                // Explicit ReentrantLock operations are invisible to
                // Communix (§III-C1): walk straight past them.
                _ => stack.extend(method.successors(i)),
            }
        }

        if saw_unknown {
            Nesting::NotAnalyzed
        } else {
            Nesting::NonNested
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use communix_bytecode::{LockExpr, ProgramBuilder};

    fn analyze(build: impl FnOnce(&mut ProgramBuilder)) -> NestingReport {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        let lowered = LoweredProgram::lower(&b.build());
        NestingAnalyzer::new(&lowered).analyze()
    }

    #[test]
    fn directly_nested_block_detected() {
        let r = analyze(|b| {
            b.class("a.A")
                .plain_method("m", |s| {
                    s.sync(LockExpr::global("A"), |s| {
                        s.sync(LockExpr::global("B"), |_| {});
                    });
                })
                .done();
        });
        // Outer block nested, inner block non-nested.
        assert_eq!(r.nested().len(), 1);
        assert_eq!(r.non_nested().len(), 1);
        assert_eq!(r.analyzed_count(), 2);
        assert_eq!(r.total_count(), 2);
    }

    #[test]
    fn flat_block_is_non_nested() {
        let r = analyze(|b| {
            b.class("a.A")
                .plain_method("m", |s| {
                    s.sync(LockExpr::global("A"), |s| {
                        s.work(5);
                    });
                })
                .done();
        });
        assert_eq!(r.nested().len(), 0);
        assert_eq!(r.non_nested().len(), 1);
    }

    #[test]
    fn sequential_blocks_are_not_nested() {
        // sync(A){}; sync(B){} — the walk from A's body hits A's own exit
        // before B's enter.
        let r = analyze(|b| {
            b.class("a.A")
                .plain_method("m", |s| {
                    s.sync(LockExpr::global("A"), |_| {})
                        .sync(LockExpr::global("B"), |_| {});
                })
                .done();
        });
        assert_eq!(r.nested().len(), 0);
        assert_eq!(r.non_nested().len(), 2);
    }

    #[test]
    fn nesting_through_call_detected() {
        let r = analyze(|b| {
            b.class("a.A")
                .plain_method("outer", |s| {
                    s.sync(LockExpr::global("A"), |s| {
                        s.call("a.A", "helper");
                    });
                })
                .plain_method("helper", |s| {
                    s.sync(LockExpr::global("B"), |_| {});
                })
                .done();
        });
        let nested = r.nested();
        assert_eq!(nested.len(), 1);
        assert_eq!(nested[0].method.as_ref(), "outer");
    }

    #[test]
    fn nesting_through_transitive_call_detected() {
        let r = analyze(|b| {
            b.class("a.A")
                .plain_method("outer", |s| {
                    s.sync(LockExpr::global("A"), |s| {
                        s.call("a.A", "mid");
                    });
                })
                .plain_method("mid", |s| {
                    s.call("a.A", "leaf");
                })
                .plain_method("leaf", |s| {
                    s.sync(LockExpr::global("B"), |_| {});
                })
                .done();
        });
        assert_eq!(r.nested().len(), 1);
    }

    #[test]
    fn call_to_synchronized_method_is_nesting() {
        let r = analyze(|b| {
            b.class("a.A")
                .plain_method("outer", |s| {
                    s.sync(LockExpr::global("A"), |s| {
                        s.call("a.A", "syncM");
                    });
                })
                .sync_method("syncM", |_| {})
                .done();
        });
        // outer block nested; the sync method itself is non-nested.
        assert!(r.is_nested(&SyncSite::new("a.A", "outer", 2)));
    }

    #[test]
    fn branch_with_one_nested_arm_is_nested() {
        let r = analyze(|b| {
            b.class("a.A")
                .plain_method("m", |s| {
                    s.sync(LockExpr::global("A"), |s| {
                        s.branch(
                            |t| {
                                t.sync(LockExpr::global("B"), |_| {});
                            },
                            |e| {
                                e.work(1);
                            },
                        );
                    });
                })
                .done();
        });
        assert_eq!(r.nested().len(), 1);
    }

    #[test]
    fn nested_acquisition_inside_loop_detected() {
        let r = analyze(|b| {
            b.class("a.A")
                .plain_method("m", |s| {
                    s.sync(LockExpr::global("A"), |s| {
                        s.repeat(3, |body| {
                            body.sync(LockExpr::global("B"), |_| {});
                        });
                    });
                })
                .done();
        });
        assert_eq!(r.nested().len(), 1);
    }

    #[test]
    fn opaque_site_not_analyzed() {
        let r = analyze(|b| {
            b.class("a.A")
                .opaque_method("native0", |s| {
                    s.sync(LockExpr::global("A"), |s| {
                        s.sync(LockExpr::global("B"), |_| {});
                    });
                })
                .done();
        });
        // Both sites live in an opaque method: neither can be analyzed.
        assert_eq!(r.not_analyzed().len(), 2);
        assert_eq!(r.analyzed_count(), 0);
    }

    #[test]
    fn call_to_opaque_makes_block_not_analyzed() {
        let r = analyze(|b| {
            b.class("a.A")
                .plain_method("m", |s| {
                    s.sync(LockExpr::global("A"), |s| {
                        s.call("a.A", "native0");
                    });
                })
                .opaque_method("native0", |_| {})
                .done();
        });
        assert_eq!(r.not_analyzed().len(), 1);
        assert_eq!(r.nested().len(), 0);
    }

    #[test]
    fn definite_nesting_beats_opaque_uncertainty() {
        // One arm calls an opaque method, the other definitely nests:
        // "some path nested" wins.
        let r = analyze(|b| {
            b.class("a.A")
                .plain_method("m", |s| {
                    s.sync(LockExpr::global("A"), |s| {
                        s.branch(
                            |t| {
                                t.call("a.A", "native0");
                            },
                            |e| {
                                e.sync(LockExpr::global("B"), |_| {});
                            },
                        );
                    });
                })
                .opaque_method("native0", |_| {})
                .done();
        });
        assert!(r.is_nested(&SyncSite::new("a.A", "m", 2)));
    }

    #[test]
    fn explicit_lock_ops_are_invisible() {
        // ReentrantLock calls inside the block must not make it nested.
        let r = analyze(|b| {
            b.class("a.A")
                .plain_method("m", |s| {
                    s.sync(LockExpr::global("A"), |s| {
                        s.explicit_lock("rl").work(1).explicit_unlock("rl");
                    });
                })
                .done();
        });
        assert_eq!(r.nested().len(), 0);
        assert_eq!(r.non_nested().len(), 1);
    }

    #[test]
    fn synchronized_method_calling_sync_method_is_nested() {
        let r = analyze(|b| {
            b.class("a.A")
                .sync_method("outer", |s| {
                    s.call("a.A", "inner");
                })
                .sync_method("inner", |_| {})
                .done();
        });
        assert!(r.is_nested(&SyncSite::new("a.A", "outer", 1)));
        assert!(!r.is_nested(&SyncSite::new("a.A", "inner", 2)));
    }

    #[test]
    fn report_iteration_and_timing() {
        let r = analyze(|b| {
            b.class("a.A")
                .plain_method("m", |s| {
                    s.sync(LockExpr::global("A"), |_| {});
                })
                .done();
        });
        assert_eq!(r.iter().count(), 1);
        // elapsed is a real measurement; just check it is readable.
        let _ = r.elapsed();
    }

    #[test]
    fn classify_missing_site_is_none() {
        let r = analyze(|b| {
            b.class("a.A").plain_method("m", |_| {}).done();
        });
        assert_eq!(r.classify(&SyncSite::new("a.A", "m", 99)), None);
    }
}
