//! Soot-equivalent static analysis: call graphs and the §III-C3 nesting
//! detector.
//!
//! The Communix agent must decide whether "the outer call stacks of a new
//! signature end in nested synchronized blocks/methods" (§III-C1, third
//! DoS check). The paper's algorithm walks the control-flow graph of the
//! application binary:
//!
//! > Given the control flow graph (CFG) of an application binary, and the
//! > monitorenter statement *s* corresponding to a synchronized block, the
//! > Communix agent inspects the CFG, starting from the successor of *s*.
//! > As soon as a monitorenter (monitorexit) statement is encountered, the
//! > algorithm returns that B is nested (non-nested). If a method call
//! > statement *s_call* is met, the algorithm returns that B is nested, if
//! > any method that may be called (directly or indirectly) by *s_call* is
//! > either synchronized or contains a synchronized block.
//!
//! This crate implements that algorithm over [`communix_bytecode`]'s
//! lowered form, including the real-world wrinkle the paper reports in
//! Table I: Soot "could not retrieve the CFGs of some of the methods", so
//! only 11–54% of sync blocks could be analyzed. Methods flagged *opaque*
//! reproduce that: any block whose classification depends on an opaque
//! method is reported [`Nesting::NotAnalyzed`].
//!
//! # Example
//!
//! ```
//! use communix_bytecode::{LockExpr, LoweredProgram, ProgramBuilder};
//! use communix_analysis::{NestingAnalyzer, Nesting};
//!
//! let mut b = ProgramBuilder::new();
//! b.class("app.C")
//!     .plain_method("outer", |s| {
//!         s.sync(LockExpr::global("A"), |s| {
//!             s.sync(LockExpr::global("B"), |_| {});
//!         });
//!     })
//!     .done();
//! let p = b.build();
//! let lowered = LoweredProgram::lower(&p);
//! let report = NestingAnalyzer::new(&lowered).analyze();
//! assert_eq!(report.nested().len(), 1); // the outer block is nested
//! assert_eq!(report.analyzed_count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod callgraph;
mod depth;
mod nesting;

pub use callgraph::{CallGraph, SyncEffect};
pub use depth::MinDepths;
pub use nesting::{Nesting, NestingAnalyzer, NestingReport};
