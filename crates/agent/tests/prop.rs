//! Property-based tests for the agent's validation pipeline: whatever
//! the input, validated output satisfies the §III-C invariants.

use std::collections::HashMap;

use communix_agent::{SignatureValidator, ValidationError, ValidatorConfig};
use communix_analysis::NestingAnalyzer;
use communix_bytecode::{LockExpr, LoweredProgram, Program, ProgramBuilder};
use communix_crypto::Digest;
use communix_dimmunix::{CallStack, Frame, SigEntry, Signature, Site};
use proptest::prelude::*;

/// The fixed test application: one nested site (`app.C.outer` line 2),
/// one non-nested inner site, one helper class.
fn program() -> Program {
    let mut b = ProgramBuilder::new();
    b.class("app.C")
        .plain_method("outer", |s| {
            s.sync(LockExpr::global("A"), |s| {
                s.sync(LockExpr::global("B"), |_| {});
            });
        })
        .done();
    b.class("app.D")
        .plain_method("helper", |s| {
            s.work(1);
        })
        .done();
    b.build()
}

fn hashes(p: &Program) -> HashMap<String, Digest> {
    p.hash_index()
        .into_iter()
        .map(|(k, v)| (k.as_str().to_string(), v))
        .collect()
}

/// Deterministically expands `(len, seed)` into a stack mixing good,
/// stale, and missing hashes over known and unknown classes. When
/// `top_is_nested`, the top frame is the app's real nested site with the
/// correct hash, so a useful fraction of generated signatures passes.
fn mk_stack(p: &Program, len: usize, seed: u64, top_is_nested: bool) -> CallStack {
    let h_c = p.class("app.C").unwrap().bytecode_hash();
    let h_d = p.class("app.D").unwrap().bytecode_hash();
    let mut s = seed;
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s >> 33
    };
    let mut frames = Vec::new();
    for d in 0..len {
        let is_top = d + 1 == len;
        let roll = next() % 10;
        let (class, hash) = if is_top && top_is_nested {
            ("app.C", Some(h_c))
        } else if roll < 6 {
            ("app.D", Some(h_d))
        } else if roll < 8 {
            // Stale hash: right class, wrong version.
            ("app.D", Some(communix_crypto::sha256(&seed.to_le_bytes())))
        } else {
            ("ghost.G", None)
        };
        let line = if is_top && top_is_nested {
            2
        } else {
            10 + (next() % 40) as u32
        };
        frames.push(Frame {
            site: Site::new(class, "outer", line),
            hash,
        });
    }
    frames.into_iter().collect()
}

proptest! {
    /// For every input: if validation succeeds, the output's stacks are
    /// suffixes of the input's, every outer stack is ≥ 5 deep, every
    /// outer top is the nested site, and every surviving frame's hash
    /// matches the application. Rejection is always legal; nondeterminism
    /// never is.
    #[test]
    fn validation_invariants(
        entries in proptest::collection::vec((1..10usize, 1..10usize, any::<u64>()), 1..4)
    ) {
        let p = program();
        let lowered = LoweredProgram::lower(&p);
        let report = NestingAnalyzer::new(&lowered).analyze();
        let v = SignatureValidator::new(
            hashes(&p),
            Some(&report),
            ValidatorConfig::default(),
        );
        let h_c = p.class("app.C").unwrap().bytecode_hash();
        let h_d = p.class("app.D").unwrap().bytecode_hash();

        let sig = Signature::remote(
            entries
                .iter()
                .map(|(ol, il, seed)| {
                    SigEntry::new(
                        mk_stack(&p, *ol, *seed, true),
                        mk_stack(&p, *il, seed.wrapping_add(1), true),
                    )
                })
                .collect(),
        );

        match v.validate(&sig) {
            Ok(out) => {
                prop_assert_eq!(out.arity(), sig.arity());
                for oe in out.entries() {
                    // Trimming only: the output entry must be a suffix of
                    // SOME input entry (canonical ordering may permute).
                    prop_assert!(
                        sig.entries().iter().any(|ie| oe.outer.is_suffix_of(&ie.outer)
                            && oe.inner.is_suffix_of(&ie.inner)),
                        "output stacks must be suffixes of input stacks"
                    );
                    // Depth rule.
                    prop_assert!(oe.outer.depth() >= 5);
                    // Nesting rule on the outer top.
                    let top = oe.outer.top().unwrap();
                    prop_assert_eq!(top.site.class.as_ref(), "app.C");
                    prop_assert_eq!(top.site.line, 2);
                    // Every surviving frame's hash matches the app.
                    for f in oe.outer.frames().iter().chain(oe.inner.frames()) {
                        let expect = if f.site.class.as_ref() == "app.C" { h_c } else { h_d };
                        prop_assert_eq!(f.hash, Some(expect));
                    }
                }
            }
            Err(ValidationError::NestingUnknown { .. }) => {
                prop_assert!(
                    false,
                    "a full nesting report was supplied; unknown is impossible"
                );
            }
            Err(_) => {} // rejection is always legal
        }

        // Determinism: validating twice gives the same verdict.
        match (v.validate(&sig), v.validate(&sig)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "validation must be deterministic"),
        }
    }

    /// The adaptive threshold never accepts a signature the fixed
    /// threshold accepts… wait, the other way around: everything the
    /// fixed rule accepts, the adaptive rule accepts too (its per-site
    /// threshold is min(d, 5) ≤ 5).
    #[test]
    fn adaptive_accepts_superset_of_fixed(
        entries in proptest::collection::vec((1..10usize, 1..10usize, any::<u64>()), 1..3)
    ) {
        use communix_analysis::{CallGraph, MinDepths};
        let p = program();
        let lowered = LoweredProgram::lower(&p);
        let report = NestingAnalyzer::new(&lowered).analyze();
        let depths = MinDepths::compute(&lowered, &CallGraph::build(&lowered));

        let fixed = SignatureValidator::new(
            hashes(&p),
            Some(&report),
            ValidatorConfig::default(),
        );
        let adaptive = SignatureValidator::new(
            hashes(&p),
            Some(&report),
            ValidatorConfig { adaptive_depth: true, ..ValidatorConfig::default() },
        )
        .with_min_depths(&depths);

        let sig = Signature::remote(
            entries
                .iter()
                .map(|(ol, il, seed)| {
                    SigEntry::new(
                        mk_stack(&p, *ol, *seed, true),
                        mk_stack(&p, *il, seed.wrapping_add(1), true),
                    )
                })
                .collect(),
        );
        if fixed.validate(&sig).is_ok() {
            prop_assert!(
                adaptive.validate(&sig).is_ok(),
                "adaptive must accept whatever the fixed rule accepts"
            );
        }
    }
}
