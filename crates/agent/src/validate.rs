//! Client-side signature validation (§III-C3).
//!
//! For each new signature the agent checks, in order:
//!
//! 1. **Hash matching**: every call stack's hashes are compared against
//!    the bytecode hashes of the classes the running application loaded,
//!    scanning from the top frame down. A top-frame mismatch rejects the
//!    signature; a deeper mismatch trims the stack to its longest
//!    matching suffix. Inner stacks are checked too — "the signature may
//!    correspond to an earlier version of the application" whose
//!    deadlock-prone section was since fixed.
//! 2. **Depth rule**: outer call stacks must keep depth ≥ 5; shallower
//!    signatures are the §IV-B slowdown attack and are rejected.
//! 3. **Nesting rule**: outer stacks must end in *nested* synchronized
//!    sites (checked against the precomputed nesting analysis); this
//!    bounds signature-flooding attacks to N = #nested sites.

use std::collections::HashMap;

use communix_analysis::{Nesting, NestingReport};
use communix_crypto::Digest;
use communix_dimmunix::{CallStack, SigEntry, SigOrigin, Signature, Site};

/// Why the agent rejected a signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A stack's top-frame hash does not match the running application.
    TopFrameHashMismatch {
        /// The offending top frame's site.
        site: Site,
    },
    /// A top frame names a class the application has not loaded, so its
    /// hash cannot be verified.
    UnknownClass {
        /// The unknown class name.
        class: String,
    },
    /// A frame carries no hash at all (remote signatures must be fully
    /// hashed by the sender's plugin).
    MissingHash {
        /// The unhashed frame's site.
        site: Site,
    },
    /// An outer stack's depth fell below the minimum (5).
    OuterTooShallow {
        /// The offending depth.
        depth: usize,
    },
    /// An outer stack's top frame is not a nested synchronized site.
    NotNested {
        /// The offending site.
        site: Site,
    },
    /// The nesting status of an outer top frame could not be analyzed
    /// (opaque method); the signature should be retried after new classes
    /// load.
    NestingUnknown {
        /// The unanalyzable site.
        site: Site,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::TopFrameHashMismatch { site } => {
                write!(f, "top frame hash mismatch at {site}")
            }
            ValidationError::UnknownClass { class } => {
                write!(f, "class {class} not loaded by this application")
            }
            ValidationError::MissingHash { site } => {
                write!(f, "frame {site} carries no bytecode hash")
            }
            ValidationError::OuterTooShallow { depth } => {
                write!(f, "outer call stack depth {depth} below minimum")
            }
            ValidationError::NotNested { site } => {
                write!(f, "outer lock statement {site} is not nested")
            }
            ValidationError::NestingUnknown { site } => {
                write!(f, "nesting of {site} could not be analyzed")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// The agent's validation configuration.
#[derive(Debug, Clone)]
pub struct ValidatorConfig {
    /// Minimum outer stack depth (paper: 5).
    pub min_outer_depth: usize,
    /// Use the paper's §III-C1 *adaptive* threshold: `min(d, 5)` per
    /// outer lock statement, where `d` is the minimal stack depth with
    /// which that site can be reached (requires the agent to have run
    /// the min-depth analysis; falls back to the fixed threshold for
    /// sites without a known minimal depth).
    pub adaptive_depth: bool,
}

impl Default for ValidatorConfig {
    fn default() -> Self {
        ValidatorConfig {
            min_outer_depth: 5,
            adaptive_depth: false,
        }
    }
}

/// Validates incoming signatures against one application's loaded classes
/// and nesting report.
#[derive(Debug)]
pub struct SignatureValidator<'a> {
    /// Bytecode hash per loaded class name.
    hashes: HashMap<String, Digest>,
    /// Nesting classification of the application's synchronized sites.
    nesting: Option<&'a NestingReport>,
    /// Per-site minimal achievable stack depths (adaptive threshold).
    min_depths: Option<&'a communix_analysis::MinDepths>,
    config: ValidatorConfig,
}

impl<'a> SignatureValidator<'a> {
    /// Creates a validator over the given loaded-class hash index.
    /// `nesting` may be absent on the very first run (the analysis runs
    /// at shutdown); in that case the nesting rule reports
    /// [`ValidationError::NestingUnknown`].
    pub fn new(
        hashes: impl IntoIterator<Item = (String, Digest)>,
        nesting: Option<&'a NestingReport>,
        config: ValidatorConfig,
    ) -> Self {
        SignatureValidator {
            hashes: hashes.into_iter().collect(),
            nesting,
            min_depths: None,
            config,
        }
    }

    /// Supplies the min-depth analysis used by the adaptive threshold
    /// (`config.adaptive_depth`); without it the fixed threshold applies.
    pub fn with_min_depths(mut self, depths: &'a communix_analysis::MinDepths) -> Self {
        self.min_depths = Some(depths);
        self
    }

    /// The depth threshold applying to an outer stack ending at `site`.
    fn depth_threshold(&self, site: &Site) -> usize {
        if self.config.adaptive_depth {
            if let Some(depths) = self.min_depths {
                return depths.threshold(&to_bytecode_site(site), self.config.min_outer_depth);
            }
        }
        self.config.min_outer_depth
    }

    /// Validates `sig`, returning the (possibly suffix-trimmed) signature
    /// ready for generalization, or the reason it was rejected.
    ///
    /// # Errors
    ///
    /// Returns [`ValidationError`] describing the first failed check.
    pub fn validate(&self, sig: &Signature) -> Result<Signature, ValidationError> {
        let mut entries = Vec::with_capacity(sig.arity());
        for e in sig.entries() {
            let outer = self.check_stack(&e.outer)?;
            let inner = self.check_stack(&e.inner)?;
            let threshold = outer
                .top()
                .map(|f| self.depth_threshold(&f.site))
                .unwrap_or(self.config.min_outer_depth);
            if outer.depth() < threshold {
                return Err(ValidationError::OuterTooShallow {
                    depth: outer.depth(),
                });
            }
            entries.push(SigEntry::new(outer, inner));
        }

        // Nesting rule on the outer lock statements.
        for e in &entries {
            let site = e
                .outer
                .top()
                .map(|f| &f.site)
                .expect("depth check passed implies non-empty");
            let bc_site = to_bytecode_site(site);
            match self.nesting.and_then(|n| n.classify(&bc_site)) {
                Some(Nesting::Nested) => {}
                Some(Nesting::NonNested) => {
                    return Err(ValidationError::NotNested { site: site.clone() })
                }
                Some(Nesting::NotAnalyzed) | None => {
                    return Err(ValidationError::NestingUnknown { site: site.clone() })
                }
            }
        }

        Ok(Signature::new(entries, SigOrigin::Remote))
    }

    /// The hash check of §III-C3: scan from the top frame down; reject on
    /// a top mismatch, trim to the longest matching suffix otherwise.
    fn check_stack(&self, stack: &CallStack) -> Result<CallStack, ValidationError> {
        let frames = stack.frames();
        let Some(top) = frames.last() else {
            return Ok(stack.clone());
        };
        // Top frame must verify.
        self.frame_matches(top)?;
        // Walk down from the frame below the top; the first mismatch
        // trims everything below (and including) it.
        let mut keep_from = 0;
        for (i, frame) in frames.iter().enumerate().rev().skip(1) {
            if self.frame_matches(frame).is_err() {
                keep_from = i + 1;
                break;
            }
        }
        let mut out = stack.clone();
        out.truncate_to_suffix(frames.len() - keep_from);
        Ok(out)
    }

    fn frame_matches(&self, frame: &communix_dimmunix::Frame) -> Result<(), ValidationError> {
        let class = frame.site.class.as_ref();
        let Some(app_hash) = self.hashes.get(class) else {
            return Err(ValidationError::UnknownClass {
                class: class.to_string(),
            });
        };
        let Some(sig_hash) = &frame.hash else {
            return Err(ValidationError::MissingHash {
                site: frame.site.clone(),
            });
        };
        if sig_hash != app_hash {
            return Err(ValidationError::TopFrameHashMismatch {
                site: frame.site.clone(),
            });
        }
        Ok(())
    }
}

/// Converts a dimmunix frame site to the bytecode crate's site type used
/// by the nesting report.
fn to_bytecode_site(site: &Site) -> communix_bytecode::SyncSite {
    communix_bytecode::SyncSite::new(site.class.as_ref(), site.method.as_ref(), site.line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use communix_analysis::NestingAnalyzer;
    use communix_bytecode::{LockExpr, LoweredProgram, Program, ProgramBuilder};
    use communix_crypto::sha256;
    use communix_dimmunix::Frame;

    /// A program with one nested sync site (app.C.outer:2) and one
    /// non-nested site (app.C.outer:3 — the inner block).
    fn program() -> Program {
        let mut b = ProgramBuilder::new();
        b.class("app.C")
            .plain_method("outer", |s| {
                s.sync(LockExpr::global("A"), |s| {
                    s.sync(LockExpr::global("B"), |_| {});
                });
            })
            .done();
        b.class("app.D")
            .plain_method("helper", |s| {
                s.work(1);
            })
            .done();
        b.build()
    }

    fn hashes(p: &Program) -> Vec<(String, Digest)> {
        p.hash_index()
            .into_iter()
            .map(|(k, v)| (k.as_str().to_string(), v))
            .collect()
    }

    /// Builds a hashed frame that matches the program.
    fn frame(p: &Program, class: &str, method: &str, line: u32) -> Frame {
        Frame::with_hash(class, method, line, p.class(class).unwrap().bytecode_hash())
    }

    /// A fully valid remote signature (outer stacks depth ≥ 5 ending at
    /// the nested site app.C.outer:2).
    fn valid_sig(p: &Program) -> Signature {
        let deep_outer = |final_line: u32| -> CallStack {
            let mut frames: Vec<Frame> = (0..4)
                .map(|i| frame(p, "app.D", "helper", 10 + i))
                .collect();
            frames.push(frame(p, "app.C", "outer", final_line));
            frames.into_iter().collect()
        };
        let inner = |line: u32| -> CallStack {
            vec![frame(p, "app.C", "outer", line)].into_iter().collect()
        };
        Signature::remote(vec![
            SigEntry::new(deep_outer(2), inner(3)),
            SigEntry::new(deep_outer(2), inner(3)),
        ])
    }

    fn validator_with_nesting<'a>(
        p: &Program,
        report: &'a NestingReport,
    ) -> SignatureValidator<'a> {
        SignatureValidator::new(hashes(p), Some(report), ValidatorConfig::default())
    }

    #[test]
    fn valid_signature_passes() {
        let p = program();
        let lowered = LoweredProgram::lower(&p);
        let report = NestingAnalyzer::new(&lowered).analyze();
        let v = validator_with_nesting(&p, &report);
        let out = v.validate(&valid_sig(&p)).expect("valid");
        assert_eq!(out.origin(), SigOrigin::Remote);
        assert_eq!(out.min_outer_depth(), 5);
    }

    #[test]
    fn top_frame_hash_mismatch_rejects() {
        let p = program();
        let lowered = LoweredProgram::lower(&p);
        let report = NestingAnalyzer::new(&lowered).analyze();
        let v = validator_with_nesting(&p, &report);
        let mut sig = valid_sig(&p);
        // Corrupt the top frame hash of one outer stack.
        let mut entries: Vec<SigEntry> = sig.entries().to_vec();
        entries[0].outer.frames_mut().last_mut().unwrap().hash = Some(sha256(b"different version"));
        sig = Signature::remote(entries);
        assert!(matches!(
            v.validate(&sig),
            Err(ValidationError::TopFrameHashMismatch { .. })
        ));
    }

    #[test]
    fn deeper_mismatch_trims_to_suffix() {
        let p = program();
        let lowered = LoweredProgram::lower(&p);
        let report = NestingAnalyzer::new(&lowered).analyze();
        let v = validator_with_nesting(&p, &report);

        // Build outer stacks: 6 valid frames with one stale frame at the
        // bottom — the stack should be trimmed to the 6 valid ones.
        let stale = Frame::with_hash("app.D", "helper", 1, sha256(b"old version"));
        let mk_outer = || -> CallStack {
            let mut frames = vec![stale.clone()];
            frames.extend((0..5).map(|i| frame(&p, "app.D", "helper", 20 + i)));
            frames.push(frame(&p, "app.C", "outer", 2));
            frames.into_iter().collect()
        };
        let inner: CallStack = vec![frame(&p, "app.C", "outer", 3)].into_iter().collect();
        let sig = Signature::remote(vec![
            SigEntry::new(mk_outer(), inner.clone()),
            SigEntry::new(mk_outer(), inner),
        ]);
        let out = v.validate(&sig).expect("trimmed but valid");
        assert_eq!(out.entries()[0].outer.depth(), 6);
        assert!(out.entries()[0]
            .outer
            .frames()
            .iter()
            .all(|f| f.site.line != 1));
    }

    #[test]
    fn trim_below_min_depth_rejects() {
        let p = program();
        let lowered = LoweredProgram::lower(&p);
        let report = NestingAnalyzer::new(&lowered).analyze();
        let v = validator_with_nesting(&p, &report);

        // 4 stale frames + 2 valid: trimming leaves depth 2 < 5.
        let stale = Frame::with_hash("app.D", "helper", 1, sha256(b"old"));
        let mk_outer = || -> CallStack {
            let mut frames = vec![stale.clone(); 4];
            frames.push(frame(&p, "app.D", "helper", 30));
            frames.push(frame(&p, "app.C", "outer", 2));
            frames.into_iter().collect()
        };
        let inner: CallStack = vec![frame(&p, "app.C", "outer", 3)].into_iter().collect();
        let sig = Signature::remote(vec![
            SigEntry::new(mk_outer(), inner.clone()),
            SigEntry::new(mk_outer(), inner),
        ]);
        assert!(matches!(
            v.validate(&sig),
            Err(ValidationError::OuterTooShallow { depth: 2 })
        ));
    }

    #[test]
    fn shallow_attack_signature_rejected() {
        // The §IV-B attack: outer stacks of depth 1.
        let p = program();
        let lowered = LoweredProgram::lower(&p);
        let report = NestingAnalyzer::new(&lowered).analyze();
        let v = validator_with_nesting(&p, &report);
        let outer: CallStack = vec![frame(&p, "app.C", "outer", 2)].into_iter().collect();
        let inner: CallStack = vec![frame(&p, "app.C", "outer", 3)].into_iter().collect();
        let sig = Signature::remote(vec![
            SigEntry::new(outer.clone(), inner.clone()),
            SigEntry::new(outer, inner),
        ]);
        assert!(matches!(
            v.validate(&sig),
            Err(ValidationError::OuterTooShallow { depth: 1 })
        ));
    }

    #[test]
    fn non_nested_outer_site_rejected() {
        let p = program();
        let lowered = LoweredProgram::lower(&p);
        let report = NestingAnalyzer::new(&lowered).analyze();
        let v = validator_with_nesting(&p, &report);
        // Outer stacks ending at the INNER block (line 3), which is a
        // non-nested site.
        let mk_outer = || -> CallStack {
            let mut frames: Vec<Frame> = (0..4)
                .map(|i| frame(&p, "app.D", "helper", 40 + i))
                .collect();
            frames.push(frame(&p, "app.C", "outer", 3));
            frames.into_iter().collect()
        };
        let inner: CallStack = vec![frame(&p, "app.C", "outer", 3)].into_iter().collect();
        let sig = Signature::remote(vec![
            SigEntry::new(mk_outer(), inner.clone()),
            SigEntry::new(mk_outer(), inner),
        ]);
        assert!(matches!(
            v.validate(&sig),
            Err(ValidationError::NotNested { .. })
        ));
    }

    #[test]
    fn unknown_class_in_top_frame_rejects() {
        let p = program();
        let lowered = LoweredProgram::lower(&p);
        let report = NestingAnalyzer::new(&lowered).analyze();
        let v = validator_with_nesting(&p, &report);
        let mut sig = valid_sig(&p);
        let mut entries: Vec<SigEntry> = sig.entries().to_vec();
        let top = entries[0].outer.frames_mut().last_mut().unwrap();
        *top = Frame::with_hash("ghost.Class", "m", 1, sha256(b"x"));
        sig = Signature::remote(entries);
        assert!(matches!(
            v.validate(&sig),
            Err(ValidationError::UnknownClass { .. })
        ));
    }

    #[test]
    fn missing_hash_rejects() {
        let p = program();
        let lowered = LoweredProgram::lower(&p);
        let report = NestingAnalyzer::new(&lowered).analyze();
        let v = validator_with_nesting(&p, &report);
        let mut sig = valid_sig(&p);
        let mut entries: Vec<SigEntry> = sig.entries().to_vec();
        entries[0].outer.frames_mut().last_mut().unwrap().hash = None;
        sig = Signature::remote(entries);
        assert!(matches!(
            v.validate(&sig),
            Err(ValidationError::MissingHash { .. })
        ));
    }

    #[test]
    fn adaptive_threshold_accepts_shallow_but_honest_signatures() {
        // A nested site directly inside an entry method can never be
        // reached 5 deep; the paper's adaptive rule (min(d,5)) accepts
        // its honest shallow signatures while the fixed rule rejects
        // them.
        use communix_analysis::{CallGraph, MinDepths};
        let mut b = ProgramBuilder::new();
        b.class("app.E")
            .plain_method("entry", |s| {
                s.sync(LockExpr::global("A"), |s| {
                    s.sync(LockExpr::global("B"), |_| {});
                });
            })
            .done();
        let p = b.build();
        let lowered = LoweredProgram::lower(&p);
        let report = NestingAnalyzer::new(&lowered).analyze();
        let depths = MinDepths::compute(&lowered, &CallGraph::build(&lowered));

        // The honest signature: outer stacks of depth 1 at the nested
        // entry-method site (the only achievable shape).
        let frame = |line: u32| {
            Frame::with_hash(
                "app.E",
                "entry",
                line,
                p.class("app.E").unwrap().bytecode_hash(),
            )
        };
        let outer: CallStack = vec![frame(2)].into_iter().collect();
        let inner: CallStack = vec![frame(3)].into_iter().collect();
        let sig = Signature::remote(vec![
            SigEntry::new(outer.clone(), inner.clone()),
            SigEntry::new(outer, inner),
        ]);

        // Fixed rule: rejected.
        let fixed = SignatureValidator::new(hashes(&p), Some(&report), ValidatorConfig::default());
        assert!(matches!(
            fixed.validate(&sig),
            Err(ValidationError::OuterTooShallow { depth: 1 })
        ));

        // Adaptive rule: threshold min(1, 5) = 1 → accepted.
        let adaptive = SignatureValidator::new(
            hashes(&p),
            Some(&report),
            ValidatorConfig {
                adaptive_depth: true,
                ..ValidatorConfig::default()
            },
        )
        .with_min_depths(&depths);
        assert!(adaptive.validate(&sig).is_ok());
    }

    #[test]
    fn adaptive_threshold_still_blocks_deep_site_shallow_attack() {
        // For sites only reachable ≥5 deep, the adaptive rule changes
        // nothing: min(d, 5) = 5, and a depth-1 attack stays rejected.
        use communix_analysis::{CallGraph, MinDepths};
        let mut b = ProgramBuilder::new();
        let mut cb = b.class("app.D6").plain_method("entry", |s| {
            s.call("app.D6", "m1");
        });
        for i in 1..=5 {
            let callee = if i == 5 {
                "leaf".to_string()
            } else {
                format!("m{}", i + 1)
            };
            cb = cb.plain_method(&format!("m{i}"), move |s| {
                s.call("app.D6", &callee);
            });
        }
        cb.plain_method("leaf", |s| {
            s.sync(LockExpr::global("A"), |s| {
                s.sync(LockExpr::global("B"), |_| {});
            });
        })
        .done();
        let p = b.build();
        let lowered = LoweredProgram::lower(&p);
        let report = NestingAnalyzer::new(&lowered).analyze();
        let depths = MinDepths::compute(&lowered, &CallGraph::build(&lowered));

        // The nested site sits 7 frames deep at minimum: threshold 5.
        let outer_line = report.nested()[0].line;
        let mk = |line: u32| {
            Frame::with_hash(
                "app.D6",
                "leaf",
                line,
                p.class("app.D6").unwrap().bytecode_hash(),
            )
        };
        let outer: CallStack = vec![mk(outer_line)].into_iter().collect();
        let inner: CallStack = vec![mk(outer_line + 1)].into_iter().collect();
        let sig = Signature::remote(vec![
            SigEntry::new(outer.clone(), inner.clone()),
            SigEntry::new(outer, inner),
        ]);
        let v = SignatureValidator::new(
            hashes(&p),
            Some(&report),
            ValidatorConfig {
                adaptive_depth: true,
                ..ValidatorConfig::default()
            },
        )
        .with_min_depths(&depths);
        assert!(matches!(
            v.validate(&sig),
            Err(ValidationError::OuterTooShallow { depth: 1 })
        ));

        // And without min-depth data, adaptive falls back to the fixed
        // threshold as well.
        let no_data = SignatureValidator::new(
            hashes(&p),
            Some(&report),
            ValidatorConfig {
                adaptive_depth: true,
                ..ValidatorConfig::default()
            },
        );
        assert!(matches!(
            no_data.validate(&sig),
            Err(ValidationError::OuterTooShallow { .. })
        ));
    }

    #[test]
    fn missing_nesting_report_defers() {
        let p = program();
        let v = SignatureValidator::new(hashes(&p), None, ValidatorConfig::default());
        assert!(matches!(
            v.validate(&valid_sig(&p)),
            Err(ValidationError::NestingUnknown { .. })
        ));
    }

    #[test]
    fn inner_stack_hash_mismatch_rejects() {
        // "The hash checking covers also the inner call stacks" — a stale
        // inner top frame means the deadlock-prone section was fixed.
        let p = program();
        let lowered = LoweredProgram::lower(&p);
        let report = NestingAnalyzer::new(&lowered).analyze();
        let v = validator_with_nesting(&p, &report);
        let mut sig = valid_sig(&p);
        let mut entries: Vec<SigEntry> = sig.entries().to_vec();
        entries[1].inner.frames_mut().last_mut().unwrap().hash = Some(sha256(b"patched"));
        sig = Signature::remote(entries);
        assert!(matches!(
            v.validate(&sig),
            Err(ValidationError::TopFrameHashMismatch { .. })
        ));
    }
}
