//! The Communix agent's start-up and shutdown pipelines.
//!
//! "When the application starts, the agent selects from the local
//! repository the new signatures that are valid … If a new signature S is
//! found valid, the agent attempts to merge S with an existing signature
//! from the running application's deadlock history. If S cannot be merged
//! …, the agent adds S to the history." (§III-A)
//!
//! "For efficiency, the Communix agent precomputes the locations of all
//! the nested synchronized blocks/methods, when the application runs for
//! the first time. … The nesting analysis is performed at shutdown, first
//! time the application runs, and each time new classes … are loaded."
//! (§III-C3)

use std::collections::HashMap;
use std::time::{Duration, Instant};

use communix_analysis::{MinDepths, NestingAnalyzer, NestingReport};
use communix_bytecode::LoweredProgram;
use communix_client::LocalRepository;
use communix_crypto::Digest;
use communix_dimmunix::{AddOutcome, History, Signature};

use crate::validate::{SignatureValidator, ValidationError, ValidatorConfig};

/// Agent configuration.
#[derive(Debug, Clone, Default)]
pub struct AgentConfig {
    /// Validation thresholds.
    pub validator: ValidatorConfig,
}

/// What the start-up pipeline did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StartupReport {
    /// Signatures inspected (each inspected exactly once, §III-B).
    pub inspected: usize,
    /// Signatures accepted and added as new history entries.
    pub accepted: usize,
    /// Signatures merged into existing history entries (generalization).
    pub merged: usize,
    /// Signatures already covered by the history.
    pub duplicates: usize,
    /// Signatures rejected by validation.
    pub rejected: usize,
    /// Signatures deferred: hash check passed but nesting could not be
    /// decided yet (re-checked when new classes load).
    pub deferred: usize,
    /// Wall-clock duration of the pipeline (the Figure 4 quantity).
    pub elapsed: Duration,
}

impl StartupReport {
    fn absorb_outcome(&mut self, outcome: AddOutcome) {
        match outcome {
            AddOutcome::Added => self.accepted += 1,
            AddOutcome::Merged(_) => self.merged += 1,
            AddOutcome::Duplicate => self.duplicates += 1,
        }
    }
}

/// The Communix agent: runs "together with Dimmunix, in a Java
/// application's address space" (§III-A), validating and generalizing the
/// signatures the client downloaded.
#[derive(Debug, Default)]
pub struct CommunixAgent {
    config: AgentConfig,
    /// Precomputed nesting classification (absent before the first
    /// shutdown-time analysis).
    nesting: Option<NestingReport>,
    /// Precomputed per-site minimal stack depths, used by the adaptive
    /// depth threshold (§III-C1's `min(d, 5)` alternative).
    min_depths: Option<MinDepths>,
}

impl CommunixAgent {
    /// Creates an agent with no precomputed analysis.
    pub fn new(config: AgentConfig) -> Self {
        CommunixAgent {
            config,
            nesting: None,
            min_depths: None,
        }
    }

    /// The current nesting report, if the analysis has run.
    pub fn nesting(&self) -> Option<&NestingReport> {
        self.nesting.as_ref()
    }

    /// The current min-depth analysis, if it has run (computed together
    /// with the nesting analysis when the adaptive threshold is on).
    pub fn min_depths(&self) -> Option<&MinDepths> {
        self.min_depths.as_ref()
    }

    /// Runs (or re-runs) the nesting analysis over the application's
    /// loaded bytecode — the shutdown-time step of §III-C3. Returns the
    /// analysis duration (the Table I "Nesting check" column).
    ///
    /// When the adaptive depth threshold is configured, the per-site
    /// min-depth analysis runs in the same pass (it reuses the call
    /// graph the nesting analysis builds anyway).
    pub fn run_nesting_analysis(&mut self, lowered: &LoweredProgram) -> Duration {
        let analyzer = NestingAnalyzer::new(lowered);
        if self.config.validator.adaptive_depth {
            self.min_depths = Some(MinDepths::compute(lowered, analyzer.callgraph()));
        }
        let report = analyzer.analyze();
        let elapsed = report.elapsed();
        self.nesting = Some(report);
        elapsed
    }

    /// The start-up pipeline: inspect every not-yet-inspected signature
    /// in the repository, validate it against the application, and
    /// generalize it into `history`.
    ///
    /// `app_hashes` are the bytecode hashes of the classes the running
    /// application has loaded.
    pub fn startup(
        &self,
        app_hashes: &HashMap<String, Digest>,
        repo: &mut LocalRepository,
        history: &mut History,
    ) -> StartupReport {
        let start = Instant::now();
        let mut report = StartupReport::default();
        let validator = self.validator(app_hashes);

        let pending: Vec<(usize, String)> = repo
            .uninspected()
            .map(|(i, s)| (i, s.to_string()))
            .collect();
        let mut retries = Vec::new();
        for (idx, text) in pending {
            report.inspected += 1;
            self.process_one(
                &validator,
                &text,
                history,
                &mut report,
                Some((idx, &mut retries)),
            );
        }
        for idx in retries {
            // Persist the retry set; I/O errors only lose the retry
            // optimization, never correctness.
            let _ = repo.mark_nesting_retry(idx);
        }
        let _ = repo.mark_inspected();
        report.elapsed = start.elapsed();
        report
    }

    /// Re-validates signatures that previously failed only the nesting
    /// check — called after new classes were loaded, which "can only
    /// uncover new nested synchronized blocks/methods" (§III-C3).
    pub fn recheck_after_class_load(
        &self,
        app_hashes: &HashMap<String, Digest>,
        repo: &mut LocalRepository,
        history: &mut History,
    ) -> StartupReport {
        let start = Instant::now();
        let mut report = StartupReport::default();
        let validator = self.validator(app_hashes);
        let pending = repo.take_nesting_retries().unwrap_or_default();
        let mut retries = Vec::new();
        for (idx, text) in pending {
            report.inspected += 1;
            self.process_one(
                &validator,
                &text,
                history,
                &mut report,
                Some((idx, &mut retries)),
            );
        }
        for idx in retries {
            let _ = repo.mark_nesting_retry(idx);
        }
        report.elapsed = start.elapsed();
        report
    }

    /// Builds the validator for the current analyses and configuration.
    fn validator<'a>(&'a self, app_hashes: &HashMap<String, Digest>) -> SignatureValidator<'a> {
        let v = SignatureValidator::new(
            app_hashes.iter().map(|(k, h)| (k.clone(), *h)),
            self.nesting.as_ref(),
            self.config.validator.clone(),
        );
        match &self.min_depths {
            Some(d) => v.with_min_depths(d),
            None => v,
        }
    }

    /// Validates and files a single signature text.
    fn process_one(
        &self,
        validator: &SignatureValidator<'_>,
        text: &str,
        history: &mut History,
        report: &mut StartupReport,
        retry_slot: Option<(usize, &mut Vec<usize>)>,
    ) {
        let Ok(sig) = text.parse::<Signature>() else {
            report.rejected += 1;
            return;
        };
        match validator.validate(&sig) {
            Ok(valid) => {
                let outcome =
                    history.add_generalizing(valid, self.config.validator.min_outer_depth);
                report.absorb_outcome(outcome);
            }
            Err(ValidationError::NestingUnknown { .. }) => {
                report.deferred += 1;
                if let Some((idx, retries)) = retry_slot {
                    retries.push(idx);
                }
            }
            Err(_) => report.rejected += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use communix_bytecode::{LockExpr, Program, ProgramBuilder};
    use communix_dimmunix::{CallStack, Frame, SigEntry};

    /// App with a nested site app.C.outer:2 plus helper class app.D.
    fn program() -> Program {
        let mut b = ProgramBuilder::new();
        b.class("app.C")
            .plain_method("outer", |s| {
                s.sync(LockExpr::global("A"), |s| {
                    s.sync(LockExpr::global("B"), |_| {});
                });
            })
            .done();
        b.class("app.D")
            .plain_method("helper", |s| {
                s.work(1);
            })
            .done();
        b.build()
    }

    fn hashes(p: &Program) -> HashMap<String, Digest> {
        p.hash_index()
            .into_iter()
            .map(|(k, v)| (k.as_str().to_string(), v))
            .collect()
    }

    fn frame(p: &Program, class: &str, method: &str, line: u32) -> Frame {
        Frame::with_hash(class, method, line, p.class(class).unwrap().bytecode_hash())
    }

    /// Valid remote signature with `extra` additional outer depth.
    /// Different `extra` values model different manifestations of the
    /// same bug: they share the 5 innermost (top) frames and differ only
    /// in the frames below, so generalization can merge them at depth 5.
    fn sig_text(p: &Program, extra: usize) -> String {
        let outer = |final_line: u32| -> CallStack {
            let mut frames: Vec<Frame> = (0..extra)
                .map(|i| frame(p, "app.D", "helper", 50 + i as u32))
                .collect();
            frames.extend((0..4).map(|i| frame(p, "app.D", "helper", 10 + i)));
            frames.push(frame(p, "app.C", "outer", final_line));
            frames.into_iter().collect()
        };
        let inner: CallStack = vec![frame(p, "app.C", "outer", 3)].into_iter().collect();
        Signature::remote(vec![
            SigEntry::new(outer(2), inner.clone()),
            SigEntry::new(outer(2), inner),
        ])
        .to_string()
    }

    fn ready_agent(p: &Program) -> CommunixAgent {
        let mut agent = CommunixAgent::new(AgentConfig::default());
        let lowered = LoweredProgram::lower(p);
        agent.run_nesting_analysis(&lowered);
        agent
    }

    #[test]
    fn startup_accepts_valid_signature() {
        let p = program();
        let agent = ready_agent(&p);
        let mut repo = LocalRepository::in_memory();
        repo.append([sig_text(&p, 0)]).unwrap();
        let mut history = History::new();
        let report = agent.startup(&hashes(&p), &mut repo, &mut history);
        assert_eq!(report.inspected, 1);
        assert_eq!(report.accepted, 1);
        assert_eq!(history.len(), 1);
        assert_eq!(repo.uninspected_count(), 0);
    }

    #[test]
    fn signatures_inspected_only_once() {
        let p = program();
        let agent = ready_agent(&p);
        let mut repo = LocalRepository::in_memory();
        repo.append([sig_text(&p, 0)]).unwrap();
        let mut history = History::new();
        agent.startup(&hashes(&p), &mut repo, &mut history);
        // Second startup with nothing new: zero inspections.
        let report = agent.startup(&hashes(&p), &mut repo, &mut history);
        assert_eq!(report.inspected, 0);
    }

    #[test]
    fn same_bug_signatures_generalize() {
        let p = program();
        let agent = ready_agent(&p);
        let mut repo = LocalRepository::in_memory();
        // Two manifestations of the same bug with different outer depth.
        repo.append([sig_text(&p, 2), sig_text(&p, 0)]).unwrap();
        let mut history = History::new();
        let report = agent.startup(&hashes(&p), &mut repo, &mut history);
        assert_eq!(report.accepted, 1);
        assert_eq!(report.merged + report.duplicates, 1);
        assert_eq!(history.len(), 1, "one generalized signature");
    }

    #[test]
    fn garbage_rejected() {
        let p = program();
        let agent = ready_agent(&p);
        let mut repo = LocalRepository::in_memory();
        repo.append(["complete garbage".to_string()]).unwrap();
        let mut history = History::new();
        let report = agent.startup(&hashes(&p), &mut repo, &mut history);
        assert_eq!(report.rejected, 1);
        assert!(history.is_empty());
    }

    #[test]
    fn nesting_unknown_defers_and_rechecks() {
        let p = program();
        // Agent WITHOUT the nesting analysis: everything defers.
        let agent = CommunixAgent::new(AgentConfig::default());
        let mut repo = LocalRepository::in_memory();
        repo.append([sig_text(&p, 0)]).unwrap();
        let mut history = History::new();
        let report = agent.startup(&hashes(&p), &mut repo, &mut history);
        assert_eq!(report.deferred, 1);
        assert!(history.is_empty());
        assert_eq!(repo.nesting_retry_indices(), vec![0]);

        // The analysis runs (shutdown), then the retry succeeds.
        let mut agent = agent;
        agent.run_nesting_analysis(&LoweredProgram::lower(&p));
        let report = agent.recheck_after_class_load(&hashes(&p), &mut repo, &mut history);
        assert_eq!(report.accepted, 1);
        assert_eq!(history.len(), 1);
        assert!(repo.nesting_retry_indices().is_empty());
    }

    #[test]
    fn startup_handles_thousands_quickly() {
        // §IV-A: "the agent can analyze 1,000 new deadlock signatures in
        // 2-3 seconds" on 2011 hardware; our pipeline should do it much
        // faster, and certainly within the test timeout.
        let p = program();
        let agent = ready_agent(&p);
        let mut repo = LocalRepository::in_memory();
        let texts: Vec<String> = (0..1000).map(|i| sig_text(&p, i % 7)).collect();
        repo.append(texts).unwrap();
        let mut history = History::new();
        let report = agent.startup(&hashes(&p), &mut repo, &mut history);
        assert_eq!(report.inspected, 1000);
        assert_eq!(report.accepted + report.merged + report.duplicates, 1000);
        // All manifestations of the same bug collapse into one entry.
        assert_eq!(history.len(), 1);
        assert!(report.elapsed < Duration::from_secs(3));
    }

    #[test]
    fn report_counts_are_consistent() {
        let p = program();
        let agent = ready_agent(&p);
        let mut repo = LocalRepository::in_memory();
        repo.append([sig_text(&p, 0), "garbage".to_string(), sig_text(&p, 1)])
            .unwrap();
        let mut history = History::new();
        let r = agent.startup(&hashes(&p), &mut repo, &mut history);
        assert_eq!(
            r.inspected,
            r.accepted + r.merged + r.duplicates + r.rejected + r.deferred
        );
    }
}
