//! The Communix agent: client-side signature validation and signature
//! generalization (§III-C3, §III-D).
//!
//! The agent runs inside the protected application's address space,
//! together with Dimmunix. At application start it inspects the new
//! signatures the client downloaded, validates them against the exact
//! classes the application loaded (bytecode hashes), enforces the two
//! DoS containment rules (outer depth ≥ 5, outer lock statements must be
//! nested synchronized sites), and generalizes accepted signatures into
//! the application's deadlock history.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pipeline;
mod validate;

pub use pipeline::{AgentConfig, CommunixAgent, StartupReport};
pub use validate::{SignatureValidator, ValidationError, ValidatorConfig};
