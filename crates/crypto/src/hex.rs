//! Minimal hexadecimal codec used by digests, the wire protocol, and the
//! on-disk history format.

use std::fmt;

/// Error returned when parsing invalid hexadecimal input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseHexError {
    /// The input length was odd.
    OddLength(usize),
    /// A character was not in `[0-9a-fA-F]`.
    InvalidChar {
        /// Byte offset of the offending character.
        index: usize,
        /// The offending character.
        ch: char,
    },
}

impl fmt::Display for ParseHexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseHexError::OddLength(n) => write!(f, "odd hex length {n}"),
            ParseHexError::InvalidChar { index, ch } => {
                write!(f, "invalid hex character {ch:?} at index {index}")
            }
        }
    }
}

impl std::error::Error for ParseHexError {}

const HEX_CHARS: &[u8; 16] = b"0123456789abcdef";

/// Encodes `bytes` as lowercase hex.
///
/// # Example
///
/// ```
/// assert_eq!(communix_crypto::encode_hex(&[0xde, 0xad]), "dead");
/// ```
pub fn encode_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(HEX_CHARS[(b >> 4) as usize] as char);
        out.push(HEX_CHARS[(b & 0xf) as usize] as char);
    }
    out
}

fn nibble(ch: u8, index: usize) -> Result<u8, ParseHexError> {
    match ch {
        b'0'..=b'9' => Ok(ch - b'0'),
        b'a'..=b'f' => Ok(ch - b'a' + 10),
        b'A'..=b'F' => Ok(ch - b'A' + 10),
        _ => Err(ParseHexError::InvalidChar {
            index,
            ch: ch as char,
        }),
    }
}

/// Decodes lowercase or uppercase hex into bytes.
///
/// # Errors
///
/// Returns [`ParseHexError`] if the input has odd length or contains a
/// non-hex character.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), communix_crypto::ParseHexError> {
/// assert_eq!(communix_crypto::decode_hex("DEAD")?, vec![0xde, 0xad]);
/// # Ok(())
/// # }
/// ```
pub fn decode_hex(s: &str) -> Result<Vec<u8>, ParseHexError> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err(ParseHexError::OddLength(bytes.len()));
    }
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for (i, pair) in bytes.chunks_exact(2).enumerate() {
        let hi = nibble(pair[0], 2 * i)?;
        let lo = nibble(pair[1], 2 * i + 1)?;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode_hex(&encode_hex(&data)).unwrap(), data);
    }

    #[test]
    fn empty() {
        assert_eq!(encode_hex(&[]), "");
        assert_eq!(decode_hex("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn uppercase_accepted() {
        assert_eq!(decode_hex("AbCd").unwrap(), vec![0xab, 0xcd]);
    }

    #[test]
    fn odd_length_rejected() {
        assert_eq!(decode_hex("abc"), Err(ParseHexError::OddLength(3)));
    }

    #[test]
    fn invalid_char_rejected_with_position() {
        assert_eq!(
            decode_hex("ab0g"),
            Err(ParseHexError::InvalidChar { index: 3, ch: 'g' })
        );
    }

    #[test]
    fn error_display() {
        assert_eq!(ParseHexError::OddLength(3).to_string(), "odd hex length 3");
        assert!(ParseHexError::InvalidChar { index: 3, ch: 'g' }
            .to_string()
            .contains("index 3"));
    }
}
