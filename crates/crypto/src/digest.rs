//! The [`Digest`] type: a 32-byte SHA-256 output used as a class-bytecode
//! fingerprint throughout Communix.

use std::fmt;
use std::str::FromStr;

use crate::hex::{decode_hex, encode_hex, ParseHexError};

/// Length of a SHA-256 digest in bytes.
pub const DIGEST_LEN: usize = 32;

/// A 32-byte SHA-256 digest.
///
/// Communix attaches one of these to every call-stack frame of a deadlock
/// signature (the hash of the class defining that frame, §III-C), and uses
/// digest equality to decide whether a signature "matches" the classes
/// loaded by a running application.
///
/// # Example
///
/// ```
/// use communix_crypto::{sha256, Digest};
///
/// let d = sha256(b"bytecode");
/// let hex = d.to_hex();
/// assert_eq!(hex.parse::<Digest>().unwrap(), d);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Digest([u8; DIGEST_LEN]);

impl Digest {
    /// Wraps raw digest bytes.
    pub const fn from_bytes(bytes: [u8; DIGEST_LEN]) -> Self {
        Digest(bytes)
    }

    /// Returns the digest bytes.
    pub const fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }

    /// Encodes the digest as 64 lowercase hex characters.
    pub fn to_hex(&self) -> String {
        encode_hex(&self.0)
    }

    /// Parses a digest from 64 hex characters.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDigestError`] if the input is not exactly 64 valid hex
    /// characters.
    pub fn from_hex(s: &str) -> Result<Self, ParseDigestError> {
        let bytes = decode_hex(s).map_err(ParseDigestError::Hex)?;
        if bytes.len() != DIGEST_LEN {
            return Err(ParseDigestError::Length(bytes.len()));
        }
        let mut out = [0u8; DIGEST_LEN];
        out.copy_from_slice(&bytes);
        Ok(Digest(out))
    }

    /// A short human-readable prefix (first 8 hex chars), used in log lines
    /// and Debug output. Not a substitute for full equality checks.
    pub fn short(&self) -> String {
        encode_hex(&self.0[..4])
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}…)", self.short())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl FromStr for Digest {
    type Err = ParseDigestError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Digest::from_hex(s)
    }
}

impl From<[u8; DIGEST_LEN]> for Digest {
    fn from(bytes: [u8; DIGEST_LEN]) -> Self {
        Digest(bytes)
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Error returned when parsing a [`Digest`] from hex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseDigestError {
    /// The hex payload itself was malformed.
    Hex(ParseHexError),
    /// Decoded byte count was not [`DIGEST_LEN`].
    Length(usize),
}

impl fmt::Display for ParseDigestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDigestError::Hex(e) => write!(f, "invalid digest hex: {e}"),
            ParseDigestError::Length(n) => {
                write!(f, "digest must be {DIGEST_LEN} bytes, got {n}")
            }
        }
    }
}

impl std::error::Error for ParseDigestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseDigestError::Hex(e) => Some(e),
            ParseDigestError::Length(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256;

    #[test]
    fn hex_roundtrip() {
        let d = sha256(b"roundtrip");
        assert_eq!(Digest::from_hex(&d.to_hex()).unwrap(), d);
        assert_eq!(d.to_hex().parse::<Digest>().unwrap(), d);
    }

    #[test]
    fn wrong_length_rejected() {
        assert_eq!(Digest::from_hex("abcd"), Err(ParseDigestError::Length(2)));
    }

    #[test]
    fn bad_hex_rejected() {
        let s = "zz".repeat(32);
        assert!(matches!(
            Digest::from_hex(&s),
            Err(ParseDigestError::Hex(_))
        ));
    }

    #[test]
    fn debug_is_short_and_nonempty() {
        let d = sha256(b"dbg");
        let dbg = format!("{d:?}");
        assert!(dbg.starts_with("Digest("));
        assert!(dbg.len() < 24);
    }

    #[test]
    fn display_is_full_hex() {
        let d = sha256(b"disp");
        assert_eq!(format!("{d}"), d.to_hex());
        assert_eq!(format!("{d}").len(), 64);
    }

    #[test]
    fn ord_is_bytewise() {
        let a = Digest::from_bytes([0u8; 32]);
        let b = Digest::from_bytes([1u8; 32]);
        assert!(a < b);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Digest::default().as_bytes(), &[0u8; 32]);
    }
}
