//! Cryptographic primitives for the Communix framework, implemented from
//! scratch (no external crypto dependencies).
//!
//! The paper relies on two primitives:
//!
//! * **SHA-256** — the Communix plugin attaches "the hash of the class
//!   bytecode" to every call-stack frame of a signature (§III-C), so that
//!   the agent can match signatures against the exact class versions loaded
//!   by the running application.
//! * **AES-128** — the Communix server "uses AES encryption, with a
//!   predefined 128-bit key, to produce the encrypted user ids" (§III-C2)
//!   that accompany every uploaded signature.
//!
//! Both are verified against the official FIPS test vectors in this crate's
//! test suite, and both are exercised indirectly by every higher layer.
//!
//! # Example
//!
//! ```
//! use communix_crypto::{sha256, Digest};
//!
//! let d: Digest = sha256(b"class bytecode");
//! assert_eq!(d.to_hex().len(), 64);
//! assert_eq!(Digest::from_hex(&d.to_hex()).unwrap(), d);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aes;
mod digest;
mod hex;
mod sha256;

pub use aes::{Aes128, BLOCK_LEN, KEY_LEN};
pub use digest::{Digest, ParseDigestError, DIGEST_LEN};
pub use hex::{decode_hex, encode_hex, ParseHexError};
pub use sha256::{sha256, Sha256};
