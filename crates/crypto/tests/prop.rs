//! Property-based tests for the crypto substrate.

use communix_crypto::{decode_hex, encode_hex, sha256, Aes128, Digest, Sha256};
use proptest::prelude::*;

proptest! {
    /// Hex encode/decode is a bijection on byte strings.
    #[test]
    fn hex_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let enc = encode_hex(&data);
        prop_assert_eq!(decode_hex(&enc).unwrap(), data);
    }

    /// Streaming SHA-256 equals one-shot regardless of chunking.
    #[test]
    fn sha256_chunking_invariant(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        splits in proptest::collection::vec(any::<usize>(), 0..8),
    ) {
        let mut h = Sha256::new();
        let mut offsets: Vec<usize> = splits.iter().map(|s| s % (data.len() + 1)).collect();
        offsets.sort_unstable();
        let mut prev = 0;
        for off in offsets {
            h.update(&data[prev..off]);
            prev = off;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// AES decrypt ∘ encrypt is the identity for all keys and blocks.
    #[test]
    fn aes_roundtrip(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let cipher = Aes128::new(&key);
        prop_assert_eq!(cipher.decrypt_block(&cipher.encrypt_block(&block)), block);
    }

    /// Digest hex parsing is inverse of formatting.
    #[test]
    fn digest_roundtrip(bytes in any::<[u8; 32]>()) {
        let d = Digest::from_bytes(bytes);
        prop_assert_eq!(Digest::from_hex(&d.to_hex()).unwrap(), d);
    }
}
