//! Property-based tests for signature algebra, history persistence, and
//! the avoidance matcher.

use communix_dimmunix::{
    AvoidanceMatcher, CallStack, Frame, History, LockId, LockRecord, SigEntry, SigOrigin,
    Signature, ThreadId,
};
use proptest::prelude::*;

/// Strategy for a frame with a small vocabulary so collisions (shared
/// suffixes, shared top frames) actually happen.
fn arb_frame() -> impl Strategy<Value = Frame> {
    (0..4u8, 0..6u8, 1..50u32)
        .prop_map(|(c, m, l)| Frame::new(format!("pkg.Class{c}"), format!("method{m}"), l))
}

fn arb_stack(max_depth: usize) -> impl Strategy<Value = CallStack> {
    proptest::collection::vec(arb_frame(), 1..=max_depth)
        .prop_map(|frames| frames.into_iter().collect())
}

fn arb_entry() -> impl Strategy<Value = SigEntry> {
    (arb_stack(8), arb_stack(8)).prop_map(|(o, i)| SigEntry::new(o, i))
}

fn arb_signature() -> impl Strategy<Value = Signature> {
    (
        proptest::collection::vec(arb_entry(), 1..4),
        proptest::bool::ANY,
    )
        .prop_map(|(entries, local)| {
            Signature::new(
                entries,
                if local {
                    SigOrigin::Local
                } else {
                    SigOrigin::Remote
                },
            )
        })
}

proptest! {
    /// Signature text serialization round-trips.
    #[test]
    fn signature_text_roundtrip(sig in arb_signature()) {
        let parsed: Signature = sig.to_string().parse().unwrap();
        prop_assert_eq!(parsed, sig);
    }

    /// History text serialization round-trips for arbitrary signature sets.
    #[test]
    fn history_text_roundtrip(sigs in proptest::collection::vec(arb_signature(), 0..8)) {
        let h: History = sigs.into_iter().collect();
        let parsed = History::from_text(&h.to_text()).unwrap();
        prop_assert_eq!(parsed.signatures(), h.signatures());
    }

    /// A stack is always a suffix of itself; a deeper stack never is.
    #[test]
    fn suffix_reflexivity(s in arb_stack(10)) {
        prop_assert!(s.is_suffix_of(&s));
        let mut deeper = s.clone();
        deeper.frames_mut().insert(0, Frame::new("x.X", "pad", 999));
        prop_assert!(s.is_suffix_of(&deeper));
        prop_assert!(!deeper.is_suffix_of(&s));
    }

    /// The longest common suffix is a suffix of both inputs, and is the
    /// whole of either input iff they are site-equal.
    #[test]
    fn lcs_is_common_suffix(a in arb_stack(10), b in arb_stack(10)) {
        let l = a.longest_common_suffix(&b);
        prop_assert!(l.is_suffix_of(&a));
        prop_assert!(l.is_suffix_of(&b));
        prop_assert!(l.depth() <= a.depth().min(b.depth()));
    }

    /// LCS is commutative (on sites).
    #[test]
    fn lcs_commutative(a in arb_stack(10), b in arb_stack(10)) {
        let ab = a.longest_common_suffix(&b);
        let ba = b.longest_common_suffix(&a);
        prop_assert_eq!(ab.depth(), ba.depth());
        prop_assert!(ab.is_suffix_of(&ba) && ba.is_suffix_of(&ab));
    }

    /// Merging a signature with itself yields itself (idempotence), and
    /// merge never deepens any outer stack.
    #[test]
    fn merge_idempotent_and_never_deepens(sig in arb_signature()) {
        if let Some(m) = sig.merge(&sig, 0) {
            prop_assert_eq!(m.entries(), sig.entries());
        }
        let other = sig.clone();
        if let Some(m) = sig.merge(&other, 0) {
            prop_assert!(m.min_outer_depth() <= sig.min_outer_depth());
        }
    }

    /// same_bug is an equivalence on the generated space: reflexive,
    /// symmetric.
    #[test]
    fn same_bug_reflexive_symmetric(a in arb_signature(), b in arb_signature()) {
        prop_assert!(a.same_bug(&a));
        prop_assert_eq!(a.same_bug(&b), b.same_bug(&a));
    }

    /// Adjacency is irreflexive and symmetric.
    #[test]
    fn adjacency_irreflexive_symmetric(a in arb_signature(), b in arb_signature()) {
        prop_assert!(!a.adjacent_to(&a));
        prop_assert_eq!(a.adjacent_to(&b), b.adjacent_to(&a));
    }

    /// The matcher never reports an instantiation whose participants
    /// repeat a thread or lock, and always includes the candidate.
    #[test]
    fn matcher_participants_are_distinct(
        sig in arb_signature(),
        records in proptest::collection::vec(
            (1..6u64, 1..6u64, arb_stack(6)),
            0..6
        ),
        cand in (10..12u64, 10..12u64, arb_stack(6)),
    ) {
        let mut h = History::new();
        h.add(sig);
        let mut m = AvoidanceMatcher::new(&h);
        let records: Vec<LockRecord> = records
            .into_iter()
            .map(|(t, l, s)| LockRecord { thread: ThreadId(t), lock: LockId(l), stack: s })
            .collect();
        let candidate = LockRecord {
            thread: ThreadId(cand.0),
            lock: LockId(cand.1),
            stack: cand.2,
        };
        if let Some(inst) = m.would_instantiate(&candidate, &records) {
            let mut threads: Vec<_> = inst.participants.iter().map(|(t, _)| *t).collect();
            let mut locks: Vec<_> = inst.participants.iter().map(|(_, l)| *l).collect();
            threads.sort(); threads.dedup();
            locks.sort(); locks.dedup();
            prop_assert_eq!(threads.len(), inst.participants.len());
            prop_assert_eq!(locks.len(), inst.participants.len());
            prop_assert!(inst.participants.contains(&(candidate.thread, candidate.lock)));
        }
    }

    /// Truncating to a suffix then re-checking: the truncated stack is a
    /// suffix of the original.
    #[test]
    fn truncate_produces_suffix(s in arb_stack(10), n in 0usize..12) {
        let mut t = s.clone();
        t.truncate_to_suffix(n);
        prop_assert!(t.is_suffix_of(&s));
        prop_assert!(t.depth() <= n.min(s.depth()) || s.depth() <= n);
    }
}
