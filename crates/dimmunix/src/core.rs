//! The Dimmunix core: lock-state tracking, the avoidance module, and the
//! detection module, behind a runtime-agnostic API.
//!
//! The core is single-threaded by design: hosting runtimes (the
//! deterministic simulator and the real-thread runtime in
//! `communix-runtime`) serialize calls into it, exactly as Dimmunix
//! serializes its interposition logic inside the target JVM. Every method
//! that can unblock *other* threads returns [`Wake`] instructions the
//! runtime must apply.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use communix_clock::Clock;

use crate::config::{BreakPolicy, DimmunixConfig};
use crate::events::{Event, Wake};
use crate::fp::FalsePositiveDetector;
use crate::frame::CallStack;
use crate::history::{AddOutcome, History};
use crate::ids::{LockId, ThreadId};
use crate::matcher::{AvoidanceMatcher, LockRecord};
use crate::signature::{SigEntry, Signature};

/// Outcome of a lock request, from the requester's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// The lock is now held; proceed.
    Acquired,
    /// The thread must park until a [`Wake`] names it (either blocked on
    /// a busy lock or suspended by avoidance).
    Parked,
    /// The request was aborted immediately as a deadlock victim.
    Aborted,
}

/// Aggregate counters, used by overhead benchmarks and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Total non-reentrant lock requests.
    pub requests: u64,
    /// Requests granted immediately.
    pub immediate_acquisitions: u64,
    /// Requests that blocked on a busy lock.
    pub blocks: u64,
    /// Requests suspended by the avoidance module (signature
    /// instantiations, in the paper's terms).
    pub suspensions: u64,
    /// Avoidance yields cancelled to resolve starvation.
    pub forced_grants: u64,
    /// Deadlocks detected.
    pub deadlocks_detected: u64,
    /// Acquisitions aborted as deadlock victims.
    pub aborts: u64,
    /// Cumulative stack-suffix comparisons performed by the avoidance
    /// matcher (the cost driver of signature matching; simulated runtimes
    /// convert this into virtual time).
    pub match_work: u64,
}

#[derive(Debug, Clone)]
struct HoldInfo {
    stack: CallStack,
    reentrancy: u32,
}

#[derive(Debug, Clone)]
struct WaitInfo {
    lock: LockId,
    stack: CallStack,
}

#[derive(Debug, Clone, Default)]
struct ThreadState {
    holds: HashMap<LockId, HoldInfo>,
    waiting: Option<WaitInfo>,
}

#[derive(Debug, Clone, Default)]
struct LockState {
    owner: Option<ThreadId>,
    queue: VecDeque<ThreadId>,
}

#[derive(Debug, Clone)]
struct SuspendedReq {
    thread: ThreadId,
    lock: LockId,
    stack: CallStack,
    /// Threads participating in the instantiation that blocks this
    /// request (for starvation detection).
    blockers: Vec<ThreadId>,
    seq: u64,
}

/// The Dimmunix engine: "an avoidance module that prevents reoccurrences
/// of previously encountered deadlocks, and a detection module that
/// detects deadlocks, extracts their signatures, and adds them to a
/// persistent history" (§II-A).
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use communix_clock::SystemClock;
/// use communix_dimmunix::{
///     CallStack, DimmunixConfig, DimmunixCore, Frame, LockId, RequestOutcome, ThreadId,
/// };
///
/// let mut core = DimmunixCore::new(DimmunixConfig::default(), Arc::new(SystemClock::new()));
/// let stack: CallStack = vec![Frame::new("app.C", "run", 3)].into_iter().collect();
/// let (outcome, _wakes) = core.request(ThreadId(1), LockId(1), stack);
/// assert_eq!(outcome, RequestOutcome::Acquired);
/// let _wakes = core.release(ThreadId(1), LockId(1));
/// ```
#[derive(Debug)]
pub struct DimmunixCore {
    config: DimmunixConfig,
    history: History,
    matcher: AvoidanceMatcher,
    fp: FalsePositiveDetector,
    locks: HashMap<LockId, LockState>,
    threads: HashMap<ThreadId, ThreadState>,
    suspended: Vec<SuspendedReq>,
    events: VecDeque<Event>,
    clock: Arc<dyn Clock>,
    stats: CoreStats,
    seq: u64,
}

impl DimmunixCore {
    /// Creates a core with an empty history.
    pub fn new(config: DimmunixConfig, clock: Arc<dyn Clock>) -> Self {
        let fp = FalsePositiveDetector::new(
            config.fp_instantiation_threshold,
            config.fp_burst_threshold,
            config.fp_burst_window,
        );
        DimmunixCore {
            config,
            history: History::new(),
            matcher: AvoidanceMatcher::default(),
            fp,
            locks: HashMap::new(),
            threads: HashMap::new(),
            suspended: Vec::new(),
            events: VecDeque::new(),
            clock,
            stats: CoreStats::default(),
            seq: 0,
        }
    }

    /// Creates a core seeded with an existing history.
    pub fn with_history(config: DimmunixConfig, clock: Arc<dyn Clock>, history: History) -> Self {
        let mut core = DimmunixCore::new(config, clock);
        core.set_history(history);
        core
    }

    /// The current deadlock history.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Replaces the history wholesale (agent start-up pipeline) and
    /// rebuilds avoidance state. False-positive statistics restart.
    pub fn set_history(&mut self, history: History) {
        self.history = history;
        self.matcher.rebuild(&self.history);
        self.fp.reset();
    }

    /// Adds a signature to the history (e.g. handed down by the agent),
    /// returning what happened.
    pub fn add_signature(&mut self, sig: Signature) -> AddOutcome {
        let outcome = self.history.add(sig);
        if outcome == AddOutcome::Added {
            self.matcher.rebuild(&self.history);
        }
        outcome
    }

    /// Aggregate counters.
    pub fn stats(&self) -> CoreStats {
        let mut s = self.stats;
        s.match_work = self.matcher.work();
        s
    }

    /// Drains pending events.
    pub fn drain_events(&mut self) -> Vec<Event> {
        self.events.drain(..).collect()
    }

    /// Whether the false-positive detector flagged `sig_index`.
    pub fn is_fp_suspect(&self, sig_index: usize) -> bool {
        self.fp.is_suspect(sig_index)
    }

    /// Requests `lock` for `thread`, with the thread's current call
    /// stack. Runs the avoidance module, then the normal mutex path, then
    /// (on a new wait edge) the detection module.
    ///
    /// Returns the requester-side outcome plus wakes for *other* threads.
    pub fn request(
        &mut self,
        thread: ThreadId,
        lock: LockId,
        stack: CallStack,
    ) -> (RequestOutcome, Vec<Wake>) {
        // Reentrant re-acquisition: Java monitors are reentrant; no new
        // record is published and avoidance is bypassed.
        if let Some(hold) = self.threads.entry(thread).or_default().holds.get_mut(&lock) {
            hold.reentrancy += 1;
            self.events.push_back(Event::Acquired {
                thread,
                lock,
                reentrant: true,
            });
            return (RequestOutcome::Acquired, Vec::new());
        }

        self.stats.requests += 1;

        if self.config.avoidance && !self.matcher.is_empty() {
            let candidate = LockRecord {
                thread,
                lock,
                stack: stack.clone(),
            };
            let records = self.current_records();
            if let Some(inst) = self.matcher.would_instantiate(&candidate, &records) {
                self.stats.suspensions += 1;
                let now = self.clock.now();
                if self.fp.record_instantiation(inst.sig_index, now) {
                    self.events.push_back(Event::FalsePositiveSuspect {
                        sig_index: inst.sig_index,
                    });
                }
                self.events.push_back(Event::Suspended {
                    thread,
                    lock,
                    sig_index: inst.sig_index,
                });
                let blockers: Vec<ThreadId> = inst
                    .participants
                    .iter()
                    .map(|(t, _)| *t)
                    .filter(|t| *t != thread)
                    .collect();
                self.seq += 1;
                self.suspended.push(SuspendedReq {
                    thread,
                    lock,
                    stack: stack.clone(),
                    blockers,
                    seq: self.seq,
                });
                // Avoidance-induced starvation: if the yield closes a
                // cycle (the blockers transitively wait on this thread),
                // cancel it and let the thread through (best-effort, as in
                // Dimmunix; detection will catch any real deadlock).
                if self.in_extended_cycle(thread) {
                    self.remove_suspended(thread);
                    self.stats.forced_grants += 1;
                    self.events.push_back(Event::ForcedGrant {
                        thread,
                        lock,
                        sig_index: inst.sig_index,
                    });
                    // fall through to the publish path below
                } else {
                    return (RequestOutcome::Parked, Vec::new());
                }
            }
        }

        self.publish_request(thread, lock, stack)
    }

    /// Releases `lock` held by `thread` (outermost release hands the lock
    /// to the next queued waiter and re-checks suspended requests).
    pub fn release(&mut self, thread: ThreadId, lock: LockId) -> Vec<Wake> {
        let ts = self
            .threads
            .get_mut(&thread)
            .unwrap_or_else(|| panic!("release by unknown thread {thread}"));
        let hold = ts
            .holds
            .get_mut(&lock)
            .unwrap_or_else(|| panic!("{thread} releasing {lock} it does not hold"));
        if hold.reentrancy > 1 {
            hold.reentrancy -= 1;
            return Vec::new();
        }
        ts.holds.remove(&lock);
        self.events.push_back(Event::Released { thread, lock });

        let mut wakes = Vec::new();
        let ls = self.locks.entry(lock).or_default();
        ls.owner = None;
        if let Some(next) = ls.queue.pop_front() {
            ls.owner = Some(next);
            let nts = self.threads.entry(next).or_default();
            let wait = nts
                .waiting
                .take()
                .expect("queued thread must have wait info");
            debug_assert_eq!(wait.lock, lock);
            nts.holds.insert(
                lock,
                HoldInfo {
                    stack: wait.stack,
                    reentrancy: 1,
                },
            );
            self.events.push_back(Event::Granted { thread: next, lock });
            wakes.push(Wake::Granted(next));
        }

        self.recheck_suspended(&mut wakes);
        wakes
    }

    /// Removes a thread from all core state, releasing anything it still
    /// holds (application unwind / thread death). Returns wakes for
    /// threads unblocked by the releases.
    pub fn thread_exited(&mut self, thread: ThreadId) -> Vec<Wake> {
        let mut wakes = Vec::new();
        if let Some(ts) = self.threads.get(&thread) {
            debug_assert!(
                ts.waiting.is_none(),
                "{thread} exited while queued on a lock"
            );
            let held: Vec<LockId> = ts.holds.keys().copied().collect();
            for l in held {
                // Collapse reentrancy: the thread is gone.
                if let Some(h) = self
                    .threads
                    .get_mut(&thread)
                    .and_then(|ts| ts.holds.get_mut(&l))
                {
                    h.reentrancy = 1;
                }
                wakes.extend(self.release(thread, l));
            }
        }
        self.remove_suspended(thread);
        self.threads.remove(&thread);
        wakes
    }

    /// The number of threads currently suspended by avoidance.
    pub fn suspended_count(&self) -> usize {
        self.suspended.len()
    }

    /// Whether `thread` currently holds `lock`.
    pub fn holds(&self, thread: ThreadId, lock: LockId) -> bool {
        self.threads
            .get(&thread)
            .is_some_and(|ts| ts.holds.contains_key(&lock))
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    /// Publishes a request past avoidance: acquire a free lock or join the
    /// queue of a busy one (running detection on the new wait edge).
    fn publish_request(
        &mut self,
        thread: ThreadId,
        lock: LockId,
        stack: CallStack,
    ) -> (RequestOutcome, Vec<Wake>) {
        let ls = self.locks.entry(lock).or_default();
        match ls.owner {
            None => {
                ls.owner = Some(thread);
                self.threads.entry(thread).or_default().holds.insert(
                    lock,
                    HoldInfo {
                        stack,
                        reentrancy: 1,
                    },
                );
                self.stats.immediate_acquisitions += 1;
                self.events.push_back(Event::Acquired {
                    thread,
                    lock,
                    reentrant: false,
                });
                (RequestOutcome::Acquired, Vec::new())
            }
            Some(_owner) => {
                ls.queue.push_back(thread);
                self.threads.entry(thread).or_default().waiting = Some(WaitInfo {
                    lock,
                    stack: stack.clone(),
                });
                self.stats.blocks += 1;
                self.events.push_back(Event::Blocked { thread, lock });

                if self.config.detection {
                    if let Some(cycle) = self.find_wait_cycle(thread) {
                        return (self.handle_deadlock(thread, lock, cycle), Vec::new());
                    }
                }
                (RequestOutcome::Parked, Vec::new())
            }
        }
    }

    /// All published hold + wait records (suspended requests excluded —
    /// they yielded before publishing).
    fn current_records(&self) -> Vec<LockRecord> {
        let mut records = Vec::new();
        for (t, ts) in &self.threads {
            for (l, h) in &ts.holds {
                records.push(LockRecord {
                    thread: *t,
                    lock: *l,
                    stack: h.stack.clone(),
                });
            }
            if let Some(w) = &ts.waiting {
                records.push(LockRecord {
                    thread: *t,
                    lock: w.lock,
                    stack: w.stack.clone(),
                });
            }
        }
        records
    }

    /// Walks the wait graph from `start`: each waiting thread points at
    /// the owner of the lock it waits for. Returns the cycle (thread list)
    /// if the walk returns to a visited node.
    fn find_wait_cycle(&self, start: ThreadId) -> Option<Vec<ThreadId>> {
        let mut path: Vec<ThreadId> = Vec::new();
        let mut cur = start;
        loop {
            if let Some(pos) = path.iter().position(|t| *t == cur) {
                return Some(path[pos..].to_vec());
            }
            path.push(cur);
            let wait = self.threads.get(&cur).and_then(|ts| ts.waiting.as_ref())?;
            let owner = self.locks.get(&wait.lock).and_then(|l| l.owner)?;
            cur = owner;
        }
    }

    /// Extracts the deadlock signature from a wait cycle, records
    /// true-positive credit, appends the signature to the history, and
    /// applies the break policy. Returns the requester-side outcome.
    fn handle_deadlock(
        &mut self,
        requester: ThreadId,
        requested_lock: LockId,
        cycle: Vec<ThreadId>,
    ) -> RequestOutcome {
        self.stats.deadlocks_detected += 1;
        let n = cycle.len();
        let mut entries = Vec::with_capacity(n);
        let mut locks = Vec::with_capacity(n);
        for (i, &t) in cycle.iter().enumerate() {
            let prev = cycle[(i + n - 1) % n];
            let ts = &self.threads[&t];
            let wait = ts.waiting.as_ref().expect("cycle member must wait");
            // The lock t holds that its predecessor waits for.
            let held_lock = self.threads[&prev]
                .waiting
                .as_ref()
                .expect("cycle member must wait")
                .lock;
            let outer = ts.holds[&held_lock].stack.clone();
            let inner = wait.stack.clone();
            entries.push(SigEntry::new(outer, inner));
            locks.push(held_lock);
        }
        let signature = Signature::local(entries);

        // True positives: any history signature describing this bug has
        // just been vindicated.
        for (i, s) in self.history.signatures().iter().enumerate() {
            if s.same_bug(&signature) {
                self.fp.record_true_positive(i);
            }
        }

        if self.history.add(signature.clone()) == AddOutcome::Added {
            self.matcher.rebuild(&self.history);
        }
        self.events.push_back(Event::DeadlockDetected {
            signature,
            threads: cycle.clone(),
            locks,
        });

        match self.config.break_policy {
            BreakPolicy::AbortRequester => {
                // Withdraw the requester's wait so the application can
                // unwind; everyone else stays blocked until the unwind
                // releases their locks.
                self.stats.aborts += 1;
                let ts = self.threads.get_mut(&requester).expect("requester exists");
                ts.waiting = None;
                if let Some(ls) = self.locks.get_mut(&requested_lock) {
                    ls.queue.retain(|t| *t != requester);
                }
                self.events.push_back(Event::VictimAborted {
                    thread: requester,
                    lock: requested_lock,
                });
                RequestOutcome::Aborted
            }
            BreakPolicy::LeaveDeadlocked => RequestOutcome::Parked,
        }
    }

    fn remove_suspended(&mut self, thread: ThreadId) {
        self.suspended.retain(|s| s.thread != thread);
    }

    /// Re-evaluates suspended requests (FIFO) after a state change.
    fn recheck_suspended(&mut self, wakes: &mut Vec<Wake>) {
        self.suspended.sort_by_key(|s| s.seq);
        let mut i = 0;
        while i < self.suspended.len() {
            let req = self.suspended[i].clone();
            let candidate = LockRecord {
                thread: req.thread,
                lock: req.lock,
                stack: req.stack.clone(),
            };
            let records = self.current_records();
            match self.matcher.would_instantiate(&candidate, &records) {
                None => {
                    // Safe now: re-admit through the normal path.
                    self.suspended.remove(i);
                    self.events.push_back(Event::Resumed {
                        thread: req.thread,
                        lock: req.lock,
                    });
                    let (outcome, mut w) = self.publish_request(req.thread, req.lock, req.stack);
                    wakes.append(&mut w);
                    match outcome {
                        RequestOutcome::Acquired => wakes.push(Wake::Granted(req.thread)),
                        RequestOutcome::Aborted => wakes.push(Wake::Aborted(req.thread)),
                        RequestOutcome::Parked => {}
                    }
                    // Restart: the admission may have changed records.
                    i = 0;
                }
                Some(inst) => {
                    self.suspended[i].blockers = inst
                        .participants
                        .iter()
                        .map(|(t, _)| *t)
                        .filter(|t| *t != req.thread)
                        .collect();
                    if self.in_extended_cycle(req.thread) {
                        self.suspended.remove(i);
                        self.stats.forced_grants += 1;
                        self.events.push_back(Event::ForcedGrant {
                            thread: req.thread,
                            lock: req.lock,
                            sig_index: inst.sig_index,
                        });
                        let (outcome, mut w) =
                            self.publish_request(req.thread, req.lock, req.stack);
                        wakes.append(&mut w);
                        match outcome {
                            RequestOutcome::Acquired => wakes.push(Wake::Granted(req.thread)),
                            RequestOutcome::Aborted => wakes.push(Wake::Aborted(req.thread)),
                            RequestOutcome::Parked => {}
                        }
                        i = 0;
                    } else {
                        i += 1;
                    }
                }
            }
        }
    }

    /// Starvation check: does `start` sit on a cycle in the graph whose
    /// edges are (a) waits-for-owner and (b) suspended-yields-to-blocker?
    fn in_extended_cycle(&self, start: ThreadId) -> bool {
        // Adjacency on demand.
        let edges = |t: ThreadId| -> Vec<ThreadId> {
            let mut out = Vec::new();
            if let Some(ts) = self.threads.get(&t) {
                if let Some(w) = &ts.waiting {
                    if let Some(owner) = self.locks.get(&w.lock).and_then(|l| l.owner) {
                        out.push(owner);
                    }
                }
            }
            for s in &self.suspended {
                if s.thread == t {
                    out.extend(s.blockers.iter().copied());
                }
            }
            out
        };
        // DFS looking for a path back to start.
        let mut stack: Vec<ThreadId> = edges(start);
        let mut seen: Vec<ThreadId> = Vec::new();
        while let Some(t) = stack.pop() {
            if t == start {
                return true;
            }
            if seen.contains(&t) {
                continue;
            }
            seen.push(t);
            stack.extend(edges(t));
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;
    use communix_clock::VirtualClock;

    fn cs(frames: &[(&str, u32)]) -> CallStack {
        frames
            .iter()
            .map(|(m, l)| Frame::new("app.C", *m, *l))
            .collect()
    }

    fn core() -> DimmunixCore {
        DimmunixCore::new(DimmunixConfig::default(), Arc::new(VirtualClock::new()))
    }

    /// Drives the canonical AB/BA deadlock to detection and returns the
    /// core afterwards.
    fn deadlock_ab(core: &mut DimmunixCore) -> Signature {
        let (o, _) = core.request(ThreadId(1), LockId(1), cs(&[("run", 1), ("lockA", 10)]));
        assert_eq!(o, RequestOutcome::Acquired);
        let (o, _) = core.request(ThreadId(2), LockId(2), cs(&[("run", 2), ("lockB", 20)]));
        assert_eq!(o, RequestOutcome::Acquired);
        let (o, _) = core.request(
            ThreadId(1),
            LockId(2),
            cs(&[("run", 1), ("lockA", 10), ("needB", 11)]),
        );
        assert_eq!(o, RequestOutcome::Parked);
        let (o, _) = core.request(
            ThreadId(2),
            LockId(1),
            cs(&[("run", 2), ("lockB", 20), ("needA", 21)]),
        );
        assert_eq!(o, RequestOutcome::Aborted, "requester aborted as victim");
        let events = core.drain_events();
        let sig = events
            .iter()
            .find_map(|e| match e {
                Event::DeadlockDetected { signature, .. } => Some(signature.clone()),
                _ => None,
            })
            .expect("deadlock detected");
        sig
    }

    #[test]
    fn uncontended_acquire_release() {
        let mut c = core();
        let (o, w) = c.request(ThreadId(1), LockId(1), cs(&[("m", 1)]));
        assert_eq!(o, RequestOutcome::Acquired);
        assert!(w.is_empty());
        assert!(c.holds(ThreadId(1), LockId(1)));
        let w = c.release(ThreadId(1), LockId(1));
        assert!(w.is_empty());
        assert!(!c.holds(ThreadId(1), LockId(1)));
    }

    #[test]
    fn contention_queues_and_grants_fifo() {
        let mut c = core();
        c.request(ThreadId(1), LockId(1), cs(&[("m", 1)]));
        let (o, _) = c.request(ThreadId(2), LockId(1), cs(&[("m", 2)]));
        assert_eq!(o, RequestOutcome::Parked);
        let (o, _) = c.request(ThreadId(3), LockId(1), cs(&[("m", 3)]));
        assert_eq!(o, RequestOutcome::Parked);
        let w = c.release(ThreadId(1), LockId(1));
        assert_eq!(w, vec![Wake::Granted(ThreadId(2))]);
        assert!(c.holds(ThreadId(2), LockId(1)));
        let w = c.release(ThreadId(2), LockId(1));
        assert_eq!(w, vec![Wake::Granted(ThreadId(3))]);
    }

    #[test]
    fn reentrancy_is_free_and_balanced() {
        let mut c = core();
        c.request(ThreadId(1), LockId(1), cs(&[("m", 1)]));
        let (o, _) = c.request(ThreadId(1), LockId(1), cs(&[("m", 1), ("again", 2)]));
        assert_eq!(o, RequestOutcome::Acquired);
        // One release keeps the lock (reentrancy 2 -> 1).
        c.release(ThreadId(1), LockId(1));
        assert!(c.holds(ThreadId(1), LockId(1)));
        c.release(ThreadId(1), LockId(1));
        assert!(!c.holds(ThreadId(1), LockId(1)));
    }

    #[test]
    fn deadlock_detected_and_signature_extracted() {
        let mut c = core();
        let sig = deadlock_ab(&mut c);
        assert_eq!(sig.arity(), 2);
        assert_eq!(c.stats().deadlocks_detected, 1);
        assert_eq!(c.stats().aborts, 1);
        assert_eq!(c.history().len(), 1);
        // Outer tops are the acquisition sites, inner tops the blocked
        // sites.
        let tops = sig.top_frame_sites();
        let top_methods: Vec<&str> = tops.iter().map(|s| s.method.as_ref()).collect();
        assert!(top_methods.contains(&"lockA"));
        assert!(top_methods.contains(&"lockB"));
        assert!(top_methods.contains(&"needB"));
        assert!(top_methods.contains(&"needA"));
    }

    #[test]
    fn avoidance_suspends_matching_second_thread() {
        let mut c = core();
        let sig = deadlock_ab(&mut c);
        assert_eq!(c.history().signatures()[0], sig);

        // Unwind the deadlock participants.
        let _ = c.release(ThreadId(2), LockId(2));
        let _ = c.release(ThreadId(1), LockId(1)); // t1's pending grant of l2 …
        let _ = c.release(ThreadId(1), LockId(2)); // … release it too
        assert_eq!(c.suspended_count(), 0);

        // Re-run the same flows: t3 takes the lockA role, t4 the lockB
        // role. t4's acquisition would complete the signature: suspend.
        let (o, _) = c.request(ThreadId(3), LockId(1), cs(&[("run", 1), ("lockA", 10)]));
        assert_eq!(o, RequestOutcome::Acquired);
        let (o, _) = c.request(ThreadId(4), LockId(2), cs(&[("run", 2), ("lockB", 20)]));
        assert_eq!(o, RequestOutcome::Parked);
        assert_eq!(c.suspended_count(), 1);
        assert_eq!(c.stats().suspensions, 1);

        // When t3 releases, t4 resumes and acquires.
        let w = c.release(ThreadId(3), LockId(1));
        assert!(w.contains(&Wake::Granted(ThreadId(4))));
        assert!(c.holds(ThreadId(4), LockId(2)));
        assert_eq!(c.suspended_count(), 0);
    }

    #[test]
    fn avoidance_prevents_deadlock_reoccurrence() {
        let mut c = core();
        deadlock_ab(&mut c);
        let _ = c.release(ThreadId(2), LockId(2));
        let _ = c.release(ThreadId(1), LockId(1));
        let _ = c.release(ThreadId(1), LockId(2));

        // Replay the interleaving with fresh threads; avoidance must
        // serialize them so no new deadlock is detected.
        let (o, _) = c.request(ThreadId(5), LockId(1), cs(&[("run", 1), ("lockA", 10)]));
        assert_eq!(o, RequestOutcome::Acquired);
        let (o, _) = c.request(ThreadId(6), LockId(2), cs(&[("run", 2), ("lockB", 20)]));
        assert_eq!(o, RequestOutcome::Parked); // suspended, not deadlocked
        let (o, _) = c.request(
            ThreadId(5),
            LockId(2),
            cs(&[("run", 1), ("lockA", 10), ("needB", 11)]),
        );
        assert_eq!(
            o,
            RequestOutcome::Acquired,
            "t5 proceeds through both locks"
        );
        let mut wakes = c.release(ThreadId(5), LockId(2));
        wakes.extend(c.release(ThreadId(5), LockId(1)));
        assert!(wakes.contains(&Wake::Granted(ThreadId(6))));
        assert_eq!(c.stats().deadlocks_detected, 1, "no second deadlock");
    }

    #[test]
    fn avoidance_disabled_lets_deadlock_reoccur() {
        let mut c = DimmunixCore::new(
            DimmunixConfig::detection_only(),
            Arc::new(VirtualClock::new()),
        );
        deadlock_ab(&mut c);
        let _ = c.release(ThreadId(2), LockId(2));
        let _ = c.release(ThreadId(1), LockId(1));
        let _ = c.release(ThreadId(1), LockId(2));

        c.request(ThreadId(5), LockId(1), cs(&[("run", 1), ("lockA", 10)]));
        c.request(ThreadId(6), LockId(2), cs(&[("run", 2), ("lockB", 20)]));
        c.request(
            ThreadId(5),
            LockId(2),
            cs(&[("run", 1), ("lockA", 10), ("needB", 11)]),
        );
        let (o, _) = c.request(
            ThreadId(6),
            LockId(1),
            cs(&[("run", 2), ("lockB", 20), ("needA", 21)]),
        );
        assert_eq!(o, RequestOutcome::Aborted);
        assert_eq!(c.stats().deadlocks_detected, 2);
    }

    #[test]
    fn duplicate_manifestation_not_duplicated_in_history() {
        let mut c = core();
        deadlock_ab(&mut c);
        let _ = c.release(ThreadId(2), LockId(2));
        let _ = c.release(ThreadId(1), LockId(1));
        let _ = c.release(ThreadId(1), LockId(2));
        // Same flows again but avoidance off for these threads? We cannot
        // disable per-thread; instead verify history doesn't grow on the
        // suspension path.
        c.request(ThreadId(3), LockId(1), cs(&[("run", 1), ("lockA", 10)]));
        c.request(ThreadId(4), LockId(2), cs(&[("run", 2), ("lockB", 20)]));
        assert_eq!(c.history().len(), 1);
    }

    #[test]
    fn starvation_yield_is_cancelled() {
        // t1 holds l1 at the lockA position. t2 is suspended trying the
        // lockB position. Then t1 blocks on t2's... construct: make t2
        // hold l9 and t1 wait for l9. The suspension's blocker is t1;
        // t1 waits on a lock owned by t2 => cycle t2 -> t1 -> t2: the
        // yield must be cancelled, else neither makes progress.
        let mut c = core();
        deadlock_ab(&mut c);
        let _ = c.release(ThreadId(2), LockId(2));
        let _ = c.release(ThreadId(1), LockId(1));
        let _ = c.release(ThreadId(1), LockId(2));

        // t2' (id 12) takes some unrelated lock l9 first.
        let (o, _) = c.request(ThreadId(12), LockId(9), cs(&[("init", 5)]));
        assert_eq!(o, RequestOutcome::Acquired);
        // t1' (id 11) occupies the lockA position.
        let (o, _) = c.request(ThreadId(11), LockId(1), cs(&[("run", 1), ("lockA", 10)]));
        assert_eq!(o, RequestOutcome::Acquired);
        // t2' tries the lockB position: suspended (blocker: t1').
        let (o, _) = c.request(ThreadId(12), LockId(2), cs(&[("run", 2), ("lockB", 20)]));
        assert_eq!(o, RequestOutcome::Parked);
        assert_eq!(c.suspended_count(), 1);
        // Now t1' blocks on l9 (owned by t2'): closes the extended cycle.
        let (o, w) = c.request(
            ThreadId(11),
            LockId(9),
            cs(&[("run", 1), ("lockA", 10), ("needL9", 12)]),
        );
        assert_eq!(o, RequestOutcome::Parked);
        // The recheck runs on release; but the cycle already exists. The
        // suspension is only re-examined on state change — trigger one.
        // (Release of an unrelated lock suffices to drive recheck.)
        let (o2, _) = c.request(ThreadId(13), LockId(7), cs(&[("x", 1)]));
        assert_eq!(o2, RequestOutcome::Acquired);
        let w2 = c.release(ThreadId(13), LockId(7));
        let forced = c
            .drain_events()
            .iter()
            .any(|e| matches!(e, Event::ForcedGrant { .. }));
        assert!(
            forced
                || w.iter()
                    .chain(w2.iter())
                    .any(|wk| wk.thread() == ThreadId(12)),
            "suspended thread must eventually be let through"
        );
        assert_eq!(c.suspended_count(), 0);
    }

    #[test]
    fn fp_suspect_event_emitted_for_noisy_signature() {
        let clock = Arc::new(VirtualClock::new());
        let cfg = DimmunixConfig {
            fp_instantiation_threshold: 20, // keep the test small
            ..DimmunixConfig::default()
        };
        let mut c = DimmunixCore::new(cfg, clock.clone());
        // Seed history with the AB signature.
        {
            let mut seed = core();
            let sig = deadlock_ab(&mut seed);
            c.set_history({
                let mut h = History::new();
                h.add(sig);
                h
            });
        }
        // Repeatedly create the suspension: t_even holds A-position,
        // t_odd gets suspended at B-position, then both retreat.
        let mut suspect = false;
        for i in 0..30u64 {
            let ta = ThreadId(100 + 2 * i);
            let tb = ThreadId(101 + 2 * i);
            let (o, _) = c.request(ta, LockId(1), cs(&[("run", 1), ("lockA", 10)]));
            assert_eq!(o, RequestOutcome::Acquired);
            let (o, _) = c.request(tb, LockId(2), cs(&[("run", 2), ("lockB", 20)]));
            assert_eq!(o, RequestOutcome::Parked);
            clock.advance(communix_clock::Duration::from_millis(10));
            let w = c.release(ta, LockId(1));
            assert!(w.iter().any(|wk| wk.thread() == tb));
            let _ = c.release(tb, LockId(2));
            suspect |= c
                .drain_events()
                .iter()
                .any(|e| matches!(e, Event::FalsePositiveSuspect { .. }));
        }
        assert!(suspect, "noisy signature must be flagged");
        assert!(c.is_fp_suspect(0));
    }

    #[test]
    fn thread_exit_releases_holds() {
        let mut c = core();
        c.request(ThreadId(1), LockId(1), cs(&[("m", 1)]));
        c.request(ThreadId(2), LockId(1), cs(&[("m", 2)]));
        let w = c.thread_exited(ThreadId(1));
        assert_eq!(w, vec![Wake::Granted(ThreadId(2))]);
    }

    #[test]
    fn set_history_resets_matcher() {
        let mut c = core();
        let sig = deadlock_ab(&mut c);
        let _ = c.release(ThreadId(2), LockId(2));
        let _ = c.release(ThreadId(1), LockId(1));
        let _ = c.release(ThreadId(1), LockId(2));
        // Clear history: the old signature must no longer suspend anyone.
        c.set_history(History::new());
        let (o, _) = c.request(ThreadId(3), LockId(1), cs(&[("run", 1), ("lockA", 10)]));
        assert_eq!(o, RequestOutcome::Acquired);
        let (o, _) = c.request(ThreadId(4), LockId(2), cs(&[("run", 2), ("lockB", 20)]));
        assert_eq!(o, RequestOutcome::Acquired);
        // Restore it: suspension returns.
        let _ = c.release(ThreadId(3), LockId(1));
        let _ = c.release(ThreadId(4), LockId(2));
        let mut h = History::new();
        h.add(sig);
        c.set_history(h);
        c.request(ThreadId(5), LockId(1), cs(&[("run", 1), ("lockA", 10)]));
        let (o, _) = c.request(ThreadId(6), LockId(2), cs(&[("run", 2), ("lockB", 20)]));
        assert_eq!(o, RequestOutcome::Parked);
    }

    #[test]
    fn three_thread_cycle_detected() {
        let mut c = DimmunixCore::new(
            DimmunixConfig::detection_only(),
            Arc::new(VirtualClock::new()),
        );
        c.request(ThreadId(1), LockId(1), cs(&[("a", 1)]));
        c.request(ThreadId(2), LockId(2), cs(&[("b", 2)]));
        c.request(ThreadId(3), LockId(3), cs(&[("c", 3)]));
        let (o, _) = c.request(ThreadId(1), LockId(2), cs(&[("a", 1), ("w", 4)]));
        assert_eq!(o, RequestOutcome::Parked);
        let (o, _) = c.request(ThreadId(2), LockId(3), cs(&[("b", 2), ("w", 5)]));
        assert_eq!(o, RequestOutcome::Parked);
        let (o, _) = c.request(ThreadId(3), LockId(1), cs(&[("c", 3), ("w", 6)]));
        assert_eq!(o, RequestOutcome::Aborted);
        let sig = c.history().signatures().last().unwrap();
        assert_eq!(sig.arity(), 3);
    }

    #[test]
    fn leave_deadlocked_policy_parks_requester() {
        let mut cfg = DimmunixConfig::detection_only();
        cfg.break_policy = BreakPolicy::LeaveDeadlocked;
        let mut c = DimmunixCore::new(cfg, Arc::new(VirtualClock::new()));
        c.request(ThreadId(1), LockId(1), cs(&[("a", 1)]));
        c.request(ThreadId(2), LockId(2), cs(&[("b", 2)]));
        c.request(ThreadId(1), LockId(2), cs(&[("a", 1), ("w", 3)]));
        let (o, _) = c.request(ThreadId(2), LockId(1), cs(&[("b", 2), ("w", 4)]));
        assert_eq!(o, RequestOutcome::Parked);
        assert_eq!(c.stats().deadlocks_detected, 1);
        assert_eq!(c.stats().aborts, 0);
        assert_eq!(c.history().len(), 1);
    }

    #[test]
    fn stats_accumulate() {
        let mut c = core();
        c.request(ThreadId(1), LockId(1), cs(&[("m", 1)]));
        c.request(ThreadId(2), LockId(1), cs(&[("m", 2)]));
        let s = c.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.immediate_acquisitions, 1);
        assert_eq!(s.blocks, 1);
    }
}
