//! Deadlock signatures.
//!
//! "A deadlock signature consists of (1) the call stacks the deadlocked
//! threads had when they acquired the locks involved in the deadlock and
//! (2) the call stacks of the deadlocked threads at the moment of the
//! deadlock. We call the former *outer call stacks* and the latter *inner
//! call stacks*; we call the top frames of these call stacks *outer* and
//! respectively *inner* lock statements. A deadlock bug is uniquely
//! delimited by the outer and inner lock statements." (§II-A)

use std::collections::BTreeSet;
use std::fmt;

use crate::frame::{CallStack, Site};

/// Where a signature came from. The generalization rule differs for local
/// and remote signatures (§III-D): two local signatures merge freely, but
/// a merge involving a remote signature must keep outer depth ≥ 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SigOrigin {
    /// Produced by this machine's own Dimmunix.
    Local,
    /// Downloaded from the Communix server.
    Remote,
}

impl fmt::Display for SigOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SigOrigin::Local => f.write_str("local"),
            SigOrigin::Remote => f.write_str("remote"),
        }
    }
}

/// One deadlocked thread's view: its outer and inner call stacks.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SigEntry {
    /// Stack at the acquisition of the lock the thread *held* at deadlock.
    pub outer: CallStack,
    /// Stack at the moment of deadlock (blocked acquisition).
    pub inner: CallStack,
}

impl SigEntry {
    /// Creates an entry.
    pub fn new(outer: CallStack, inner: CallStack) -> Self {
        SigEntry { outer, inner }
    }

    /// The outer lock statement (top frame site of the outer stack).
    pub fn outer_site(&self) -> Option<&Site> {
        self.outer.top().map(|f| &f.site)
    }

    /// The inner lock statement.
    pub fn inner_site(&self) -> Option<&Site> {
        self.inner.top().map(|f| &f.site)
    }
}

/// A deadlock signature: one [`SigEntry`] per deadlocked thread, stored
/// in canonical (sorted) order so signature identity is independent of
/// thread enumeration order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Signature {
    entries: Vec<SigEntry>,
    origin: SigOrigin,
}

impl Signature {
    /// Creates a signature, canonicalizing entry order.
    pub fn new(mut entries: Vec<SigEntry>, origin: SigOrigin) -> Self {
        entries.sort();
        Signature { entries, origin }
    }

    /// Creates a local signature.
    pub fn local(entries: Vec<SigEntry>) -> Self {
        Signature::new(entries, SigOrigin::Local)
    }

    /// Creates a remote signature.
    pub fn remote(entries: Vec<SigEntry>) -> Self {
        Signature::new(entries, SigOrigin::Remote)
    }

    /// The entries, in canonical order.
    pub fn entries(&self) -> &[SigEntry] {
        &self.entries
    }

    /// The signature's origin.
    pub fn origin(&self) -> SigOrigin {
        self.origin
    }

    /// Returns this signature re-labelled with `origin`.
    pub fn with_origin(mut self, origin: SigOrigin) -> Self {
        self.origin = origin;
        self
    }

    /// Number of threads involved in the deadlock.
    pub fn arity(&self) -> usize {
        self.entries.len()
    }

    /// Minimum outer-stack depth across entries — the quantity the agent's
    /// depth-≥5 DoS rule constrains (§III-C1).
    pub fn min_outer_depth(&self) -> usize {
        self.entries
            .iter()
            .map(|e| e.outer.depth())
            .min()
            .unwrap_or(0)
    }

    /// The *bug identity*: the sorted list of (outer, inner) lock-statement
    /// pairs. "A deadlock bug is uniquely delimited by the outer and inner
    /// lock statements" (§II-A).
    pub fn bug_id(&self) -> Vec<(Site, Site)> {
        let mut id: Vec<(Site, Site)> = self
            .entries
            .iter()
            .filter_map(|e| match (e.outer_site(), e.inner_site()) {
                (Some(o), Some(i)) => Some((o.clone(), i.clone())),
                _ => None,
            })
            .collect();
        id.sort();
        id
    }

    /// Whether two signatures denote the same deadlock bug — "the top
    /// frames of S have to be identical to the top frames of S′" (§III-D).
    pub fn same_bug(&self, other: &Signature) -> bool {
        self.arity() == other.arity() && self.bug_id() == other.bug_id()
    }

    /// All top frames (outer and inner lock statements) as a site set —
    /// the unit of the server's adjacency check (§III-C2).
    pub fn top_frame_sites(&self) -> BTreeSet<Site> {
        let mut set = BTreeSet::new();
        for e in &self.entries {
            if let Some(s) = e.outer_site() {
                set.insert(s.clone());
            }
            if let Some(s) = e.inner_site() {
                set.insert(s.clone());
            }
        }
        set
    }

    /// Whether `self` and `other` are *adjacent*: they share "some (but
    /// not all) top frames" (§III-C2). The server rejects a signature
    /// adjacent to one already sent by the same user.
    pub fn adjacent_to(&self, other: &Signature) -> bool {
        let a = self.top_frame_sites();
        let b = other.top_frame_sites();
        let common = a.intersection(&b).count();
        common > 0 && (a != b)
    }

    /// Merges two signatures of the same bug into their generalization:
    /// per-entry longest common suffixes of outer and inner stacks
    /// (§III-D).
    ///
    /// Returns `None` when the signatures denote different bugs, or when
    /// the merge would violate the depth rule: a merge involving a remote
    /// signature must leave every outer stack at depth ≥ `min_depth`
    /// (the agent passes 5; two local signatures merge unconditionally).
    pub fn merge(&self, other: &Signature, min_depth: usize) -> Option<Signature> {
        if !self.same_bug(other) {
            return None;
        }
        // Pair entries by their (outer, inner) lock statements. Entries
        // are sorted, and same_bug guarantees identical multisets of lock
        // statement pairs, but multiple entries can share a pair; pair
        // them greedily within each group.
        let mut used = vec![false; other.entries.len()];
        let mut merged = Vec::with_capacity(self.entries.len());
        for e in &self.entries {
            let key = (e.outer_site().cloned(), e.inner_site().cloned());
            let slot = other.entries.iter().enumerate().find(|(j, o)| {
                !used[*j] && (o.outer_site().cloned(), o.inner_site().cloned()) == key
            });
            let (j, o) = slot?;
            used[j] = true;
            merged.push(SigEntry::new(
                e.outer.longest_common_suffix(&o.outer),
                e.inner.longest_common_suffix(&o.inner),
            ));
        }
        let both_local = self.origin == SigOrigin::Local && other.origin == SigOrigin::Local;
        let origin = if both_local {
            SigOrigin::Local
        } else {
            SigOrigin::Remote
        };
        let result = Signature::new(merged, origin);
        if !both_local && result.min_outer_depth() < min_depth {
            return None;
        }
        Some(result)
    }

    /// Approximate serialized size in bytes (the paper reports 1.7 KB per
    /// signature; Figure 3's bandwidth model uses this).
    pub fn size_bytes(&self) -> usize {
        self.to_string().len()
    }
}

impl fmt::Display for Signature {
    /// Serialized form, one signature per line-group:
    /// `sig <origin>` then alternating `outer`/`inner` stack lines.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "sig {}", self.origin)?;
        for e in &self.entries {
            writeln!(f, "outer {}", e.outer)?;
            writeln!(f, "inner {}", e.inner)?;
        }
        write!(f, "end")
    }
}

/// Error parsing a [`Signature`] from its text form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSignatureError {
    msg: String,
}

impl ParseSignatureError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        ParseSignatureError { msg: msg.into() }
    }
}

impl fmt::Display for ParseSignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid signature: {}", self.msg)
    }
}

impl std::error::Error for ParseSignatureError {}

impl std::str::FromStr for Signature {
    type Err = ParseSignatureError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut lines = s.lines().map(str::trim);
        let header = lines
            .next()
            .ok_or_else(|| ParseSignatureError::new("empty input"))?;
        let origin = match header {
            "sig local" => SigOrigin::Local,
            "sig remote" => SigOrigin::Remote,
            other => {
                return Err(ParseSignatureError::new(format!(
                    "bad header {other:?} (expected 'sig local' or 'sig remote')"
                )))
            }
        };
        let mut entries = Vec::new();
        let mut pending_outer: Option<CallStack> = None;
        let mut saw_end = false;
        for line in lines {
            if line.is_empty() {
                continue;
            }
            if saw_end {
                return Err(ParseSignatureError::new("content after 'end'"));
            }
            if line == "end" {
                saw_end = true;
                continue;
            }
            if let Some(rest) =
                line.strip_prefix("outer ")
                    .or(if line == "outer" { Some("") } else { None })
            {
                if pending_outer.is_some() {
                    return Err(ParseSignatureError::new("two 'outer' lines in a row"));
                }
                pending_outer = Some(
                    rest.parse()
                        .map_err(|e| ParseSignatureError::new(format!("{e}")))?,
                );
            } else if let Some(rest) =
                line.strip_prefix("inner ")
                    .or(if line == "inner" { Some("") } else { None })
            {
                let outer = pending_outer
                    .take()
                    .ok_or_else(|| ParseSignatureError::new("'inner' without 'outer'"))?;
                let inner: CallStack = rest
                    .parse()
                    .map_err(|e| ParseSignatureError::new(format!("{e}")))?;
                entries.push(SigEntry::new(outer, inner));
            } else {
                return Err(ParseSignatureError::new(format!("bad line {line:?}")));
            }
        }
        if !saw_end {
            return Err(ParseSignatureError::new("missing 'end'"));
        }
        if pending_outer.is_some() {
            return Err(ParseSignatureError::new("'outer' without 'inner'"));
        }
        if entries.is_empty() {
            return Err(ParseSignatureError::new("signature has no entries"));
        }
        Ok(Signature::new(entries, origin))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;

    fn cs(frames: &[(&str, &str, u32)]) -> CallStack {
        frames
            .iter()
            .map(|(c, m, l)| Frame::new(*c, *m, *l))
            .collect()
    }

    /// The canonical two-thread deadlock used throughout these tests:
    /// t1 acquires A at `fooA` then blocks on B at `barB`;
    /// t2 acquires B at `fooB` then blocks on A at `barA`.
    fn sig_ab(extra_outer_depth: usize) -> Signature {
        let mut outer1 = vec![("app.M", "caller", 1), ("app.A", "fooA", 10)];
        let mut outer2 = vec![("app.M", "caller", 2), ("app.B", "fooB", 20)];
        for i in 0..extra_outer_depth {
            outer1.insert(0, ("app.D", "deep", 100 + i as u32));
            outer2.insert(0, ("app.D", "deep", 200 + i as u32));
        }
        let o1: Vec<(&str, &str, u32)> = outer1;
        let o2: Vec<(&str, &str, u32)> = outer2;
        Signature::local(vec![
            SigEntry::new(cs(&o1), cs(&[("app.A", "barB", 11)])),
            SigEntry::new(cs(&o2), cs(&[("app.B", "barA", 21)])),
        ])
    }

    #[test]
    fn canonical_order_is_independent_of_entry_order() {
        let e1 = SigEntry::new(cs(&[("a.A", "x", 1)]), cs(&[("a.A", "y", 2)]));
        let e2 = SigEntry::new(cs(&[("b.B", "x", 1)]), cs(&[("b.B", "y", 2)]));
        let s1 = Signature::local(vec![e1.clone(), e2.clone()]);
        let s2 = Signature::local(vec![e2, e1]);
        assert_eq!(s1, s2);
    }

    #[test]
    fn same_bug_requires_identical_top_frames() {
        let a = sig_ab(0);
        let b = sig_ab(3); // deeper outer stacks, same lock statements
        assert!(a.same_bug(&b));

        let different = Signature::local(vec![
            SigEntry::new(cs(&[("app.A", "fooA", 10)]), cs(&[("app.A", "OTHER", 99)])),
            SigEntry::new(cs(&[("app.B", "fooB", 20)]), cs(&[("app.B", "barA", 21)])),
        ]);
        assert!(!a.same_bug(&different));
    }

    #[test]
    fn same_bug_requires_same_arity() {
        let a = sig_ab(0);
        let three = Signature::local(vec![
            a.entries()[0].clone(),
            a.entries()[1].clone(),
            SigEntry::new(cs(&[("c.C", "z", 1)]), cs(&[("c.C", "w", 2)])),
        ]);
        assert!(!a.same_bug(&three));
    }

    #[test]
    fn adjacency_shares_some_but_not_all() {
        let a = sig_ab(0);
        // Shares fooA/barB tops but has different second entry.
        let b = Signature::local(vec![
            SigEntry::new(cs(&[("app.A", "fooA", 10)]), cs(&[("app.A", "barB", 11)])),
            SigEntry::new(cs(&[("x.X", "other", 5)]), cs(&[("x.X", "inner", 6)])),
        ]);
        assert!(a.adjacent_to(&b));
        assert!(b.adjacent_to(&a));
        // Same bug (all tops equal) is NOT adjacent.
        assert!(!a.adjacent_to(&sig_ab(4)));
        // Fully disjoint is NOT adjacent.
        let c = Signature::local(vec![SigEntry::new(
            cs(&[("z.Z", "q", 1)]),
            cs(&[("z.Z", "r", 2)]),
        )]);
        assert!(!a.adjacent_to(&c));
    }

    #[test]
    fn merge_takes_longest_common_suffixes() {
        let a = sig_ab(2);
        let b = sig_ab(0);
        let m = a.merge(&b, 5).or_else(|| a.merge(&b, 0)).unwrap();
        // Common suffix of the outer stacks is the 2 shared frames.
        assert_eq!(m.entries()[0].outer.depth(), 2);
        assert!(m.same_bug(&a));
    }

    #[test]
    fn merge_of_different_bugs_fails() {
        let a = sig_ab(0);
        let c = Signature::local(vec![SigEntry::new(
            cs(&[("z.Z", "q", 1)]),
            cs(&[("z.Z", "r", 2)]),
        )]);
        assert!(a.merge(&c, 0).is_none());
    }

    #[test]
    fn merge_depth_rule_applies_to_remote_only() {
        let a = sig_ab(0); // outer depth 2 after merge
        let b = sig_ab(3).with_origin(SigOrigin::Remote);
        // Remote merge would give outer depth 2 < 5: refused.
        assert!(a.merge(&b, 5).is_none());
        // Local+local merge at the same depth is fine.
        let b_local = sig_ab(3);
        let m = a.merge(&b_local, 5).unwrap();
        assert_eq!(m.min_outer_depth(), 2);
        assert_eq!(m.origin(), SigOrigin::Local);
    }

    #[test]
    fn merge_involving_remote_yields_remote() {
        let a = sig_ab(4);
        let b = sig_ab(5).with_origin(SigOrigin::Remote);
        // Common outer depth = 6 ≥ 5 (4 extra + 2 base vs 5 extra + 2).
        let m = a.merge(&b, 5).expect("deep merge allowed");
        assert_eq!(m.origin(), SigOrigin::Remote);
        assert!(m.min_outer_depth() >= 5);
    }

    #[test]
    fn merge_is_commutative_on_stacks() {
        let a = sig_ab(2);
        let b = sig_ab(0);
        let m1 = a.merge(&b, 0).unwrap();
        let m2 = b.merge(&a, 0).unwrap();
        assert_eq!(m1.entries(), m2.entries());
    }

    #[test]
    fn merge_is_idempotent() {
        let a = sig_ab(1);
        let m = a.merge(&a, 0).unwrap();
        assert_eq!(m.entries(), a.entries());
    }

    #[test]
    fn min_outer_depth() {
        assert_eq!(sig_ab(0).min_outer_depth(), 2);
        assert_eq!(sig_ab(3).min_outer_depth(), 5);
    }

    #[test]
    fn text_roundtrip() {
        let a = sig_ab(2);
        let s = a.to_string();
        let parsed: Signature = s.parse().unwrap();
        assert_eq!(parsed, a);
    }

    #[test]
    fn text_roundtrip_remote() {
        let a = sig_ab(0).with_origin(SigOrigin::Remote);
        assert_eq!(a.to_string().parse::<Signature>().unwrap(), a);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!("".parse::<Signature>().is_err());
        assert!("sig bogus\nend".parse::<Signature>().is_err());
        assert!("sig local\nend".parse::<Signature>().is_err()); // no entries
        assert!("sig local\nouter a#b:1\nend".parse::<Signature>().is_err()); // dangling outer
        assert!("sig local\ninner a#b:1\nend".parse::<Signature>().is_err()); // inner first
        assert!("sig local\nouter a#b:1\ninner a#c:2"
            .parse::<Signature>()
            .is_err()); // no end
        assert!("sig local\nouter a#b:1\nouter a#c:2\ninner a#d:3\nend"
            .parse::<Signature>()
            .is_err()); // double outer
        assert!("sig local\nouter a#b:1\ninner a#c:2\nend\ntrailing"
            .parse::<Signature>()
            .is_err());
    }

    #[test]
    fn size_bytes_is_plausible() {
        // A realistic depth-10, 2-thread signature with hashes should be
        // on the order of the paper's 1.7 KB.
        use communix_crypto::sha256;
        let deep: CallStack = (0..10)
            .map(|i| {
                Frame::with_hash(
                    "org.jboss.system.ServiceController",
                    "startService",
                    100 + i,
                    sha256(&[i as u8]),
                )
            })
            .collect();
        let sig = Signature::local(vec![
            SigEntry::new(deep.clone(), deep.clone()),
            SigEntry::new(deep.clone(), deep),
        ]);
        let size = sig.size_bytes();
        assert!(size > 800 && size < 6000, "size={size}");
    }

    #[test]
    fn bug_id_is_stable_under_entry_permutation() {
        let a = sig_ab(0);
        let b = Signature::local(vec![a.entries()[1].clone(), a.entries()[0].clone()]);
        assert_eq!(a.bug_id(), b.bug_id());
    }
}
