//! Events emitted by the Dimmunix core, consumed by runtimes, the
//! Communix plugin, and tests.

use crate::ids::{LockId, ThreadId};
use crate::signature::Signature;

/// An observable state transition inside Dimmunix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A thread acquired a lock (including reentrant re-acquisition).
    Acquired {
        /// Acquiring thread.
        thread: ThreadId,
        /// Acquired lock.
        lock: LockId,
        /// Whether this was a reentrant re-acquisition.
        reentrant: bool,
    },
    /// A thread blocked on a busy lock (normal mutex contention).
    Blocked {
        /// Blocked thread.
        thread: ThreadId,
        /// Contended lock.
        lock: LockId,
    },
    /// The avoidance module suspended a thread because its acquisition
    /// would instantiate a history signature (§II-A).
    Suspended {
        /// Suspended thread.
        thread: ThreadId,
        /// Requested lock.
        lock: LockId,
        /// History index of the signature that would be instantiated.
        sig_index: usize,
    },
    /// A previously suspended thread's request became safe and was
    /// re-admitted.
    Resumed {
        /// Resumed thread.
        thread: ThreadId,
        /// Requested lock.
        lock: LockId,
    },
    /// An avoidance yield was cancelled to resolve avoidance-induced
    /// starvation: the suspended thread was let through even though the
    /// signature still matched.
    ForcedGrant {
        /// The thread let through.
        thread: ThreadId,
        /// Requested lock.
        lock: LockId,
        /// Signature whose yield was cancelled.
        sig_index: usize,
    },
    /// A lock was released (outermost exit only).
    Released {
        /// Releasing thread.
        thread: ThreadId,
        /// Released lock.
        lock: LockId,
    },
    /// A queued waiter was granted a released lock.
    Granted {
        /// The new owner.
        thread: ThreadId,
        /// The lock.
        lock: LockId,
    },
    /// The detection module found a deadlock and extracted its signature.
    DeadlockDetected {
        /// The extracted signature (already added to the history).
        signature: Signature,
        /// Threads in the cycle.
        threads: Vec<ThreadId>,
        /// Locks in the cycle.
        locks: Vec<LockId>,
    },
    /// A deadlock victim's pending acquisition was aborted so the
    /// application can unwind (modelling the user restarting a hung app).
    VictimAborted {
        /// The aborted thread.
        thread: ThreadId,
        /// The lock it was waiting for.
        lock: LockId,
    },
    /// The false-positive detector flagged a signature (§III-C1: ≥100
    /// instantiations, no true positive, >10 instantiations in some 1 s
    /// window).
    FalsePositiveSuspect {
        /// History index of the suspect signature.
        sig_index: usize,
    },
}

/// A wake-up instruction for the hosting runtime: a parked thread's
/// request has concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// The thread now owns the lock it requested; unpark it.
    Granted(ThreadId),
    /// The thread's request was aborted as a deadlock victim; its lock
    /// operation must fail so the application can unwind.
    Aborted(ThreadId),
}

impl Wake {
    /// The thread this wake targets.
    pub fn thread(&self) -> ThreadId {
        match self {
            Wake::Granted(t) | Wake::Aborted(t) => *t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_thread_accessor() {
        assert_eq!(Wake::Granted(ThreadId(4)).thread(), ThreadId(4));
        assert_eq!(Wake::Aborted(ThreadId(5)).thread(), ThreadId(5));
    }
}
