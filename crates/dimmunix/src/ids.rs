//! Identifier newtypes for threads and locks.

use std::fmt;

/// A runtime thread identity, assigned by the runtime that hosts
/// Dimmunix (simulated threads in the simulator, OS threads otherwise).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(pub u64);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u64> for ThreadId {
    fn from(v: u64) -> Self {
        ThreadId(v)
    }
}

/// A runtime lock identity (one per Java monitor object: a global named
/// lock or a per-instance `this`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LockId(pub u64);

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl From<u64> for LockId {
    fn from(v: u64) -> Self {
        LockId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(ThreadId(3).to_string(), "t3");
        assert_eq!(LockId(9).to_string(), "l9");
    }

    #[test]
    fn conversions() {
        assert_eq!(ThreadId::from(5), ThreadId(5));
        assert_eq!(LockId::from(5), LockId(5));
    }
}
