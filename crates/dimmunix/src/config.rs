//! Dimmunix configuration.

use communix_clock::Duration;

/// What to do when the detection module finds a deadlock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakPolicy {
    /// Abort the requesting thread's acquisition so the hosting
    /// application can unwind and "restart". Real Dimmunix leaves the JVM
    /// hung and relies on the user restarting it; aborting the requester
    /// models that restart while keeping tests and simulations running.
    #[default]
    AbortRequester,
    /// Record the signature but leave the threads deadlocked (closest to
    /// the paper's behaviour; only usable where the harness kills the
    /// process, or in the simulator which can observe the hang).
    LeaveDeadlocked,
}

/// Tunables for [`crate::DimmunixCore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimmunixConfig {
    /// Run the avoidance module before each acquisition (§II-A). Disabled
    /// for "vanilla" baselines and detection-only configurations.
    pub avoidance: bool,
    /// Run cycle detection on each new wait edge.
    pub detection: bool,
    /// Deadlock handling policy.
    pub break_policy: BreakPolicy,
    /// False-positive rule: instantiation count threshold (paper: 100).
    pub fp_instantiation_threshold: u64,
    /// False-positive rule: burst size that must be exceeded (paper: 10).
    pub fp_burst_threshold: usize,
    /// False-positive rule: burst window (paper: 1 second).
    pub fp_burst_window: Duration,
}

impl Default for DimmunixConfig {
    fn default() -> Self {
        DimmunixConfig {
            avoidance: true,
            detection: true,
            break_policy: BreakPolicy::default(),
            fp_instantiation_threshold: 100,
            fp_burst_threshold: 10,
            fp_burst_window: Duration::from_secs(1),
        }
    }
}

impl DimmunixConfig {
    /// A detection-only configuration (no schedule alteration) — the
    /// configuration a first run uses before any history exists.
    pub fn detection_only() -> Self {
        DimmunixConfig {
            avoidance: false,
            ..DimmunixConfig::default()
        }
    }

    /// A fully disabled configuration (vanilla baseline for overhead
    /// measurements).
    pub fn vanilla() -> Self {
        DimmunixConfig {
            avoidance: false,
            detection: false,
            ..DimmunixConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_both_modules() {
        let c = DimmunixConfig::default();
        assert!(c.avoidance);
        assert!(c.detection);
        assert_eq!(c.break_policy, BreakPolicy::AbortRequester);
        assert_eq!(c.fp_instantiation_threshold, 100);
    }

    #[test]
    fn presets() {
        assert!(!DimmunixConfig::detection_only().avoidance);
        assert!(DimmunixConfig::detection_only().detection);
        let v = DimmunixConfig::vanilla();
        assert!(!v.avoidance && !v.detection);
    }
}
