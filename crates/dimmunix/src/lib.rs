//! Dimmunix: the deadlock-immunity substrate Communix builds on.
//!
//! "Programs augmented with Dimmunix develop antibodies against each
//! deadlock they encounter: Dimmunix extracts the signature of the
//! deadlock, stores it in a persistent history, then alters future thread
//! schedules transparently to the application, in order to avoid execution
//! flows matching the signature." (§II-A of the Communix paper; original
//! system published at OSDI'08.)
//!
//! This crate implements the full substrate:
//!
//! * [`Frame`], [`CallStack`] — the paper's frame encoding
//!   `c.m:l:h`, with the top frame last and the "call stack suffix"
//!   semantics used everywhere;
//! * [`Signature`], [`SigEntry`] — outer + inner call stacks per
//!   deadlocked thread, canonical ordering, bug identity, adjacency and
//!   the §III-D merge (generalization);
//! * [`History`] — the persistent signature store with its text format;
//! * [`AvoidanceMatcher`] — the instantiation-matching kernel;
//! * [`DimmunixCore`] — lock-state tracking, the avoidance module
//!   (suspension + starvation-yield cancellation), the detection module
//!   (wait-cycle discovery + signature extraction) and the
//!   false-positive detector, behind a runtime-agnostic API;
//! * [`FalsePositiveDetector`] — the §III-C1 warning rule.
//!
//! Hosting runtimes live in `communix-runtime`; this crate is pure logic
//! and fully deterministic given a [`communix_clock::Clock`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod core;
mod events;
mod fp;
mod frame;
mod history;
mod ids;
mod matcher;
mod signature;

pub use config::{BreakPolicy, DimmunixConfig};
pub use core::{CoreStats, DimmunixCore, RequestOutcome};
pub use events::{Event, Wake};
pub use fp::FalsePositiveDetector;
pub use frame::{CallStack, Frame, ParseFrameError, Site};
pub use history::{AddOutcome, BatchMergeReport, History, HistoryError};
pub use ids::{LockId, ThreadId};
pub use matcher::{AvoidanceMatcher, Instantiation, LockRecord};
pub use signature::{ParseSignatureError, SigEntry, SigOrigin, Signature};
