//! Dimmunix's false-positive detection mechanism.
//!
//! "If after 100 instantiations of a signature S there was no true
//! positive, and there was at least one interval of 1 second having more
//! than 10 instantiations of S, Dimmunix decides to warn the user about
//! signature S" (§III-C1). Communix relies on this to defuse functionality
//! DoS attacks: malicious signatures that over-serialize an application
//! get flagged so the user can drop them.

use std::collections::VecDeque;

use communix_clock::{Duration, Instant};

/// Per-signature instantiation statistics.
#[derive(Debug, Clone, Default)]
struct SigStats {
    instantiations: u64,
    true_positives: u64,
    /// Timestamps of recent instantiations, pruned to the burst window.
    recent: VecDeque<Instant>,
    /// Whether some window of `burst_window` ever saw more than
    /// `burst_threshold` instantiations.
    burst_seen: bool,
    warned: bool,
}

/// Tracks instantiations and true positives per history signature and
/// raises at most one warning per signature.
#[derive(Debug, Clone)]
pub struct FalsePositiveDetector {
    stats: Vec<SigStats>,
    /// Instantiation count after which a signature with no true positives
    /// becomes suspect (paper: 100).
    instantiation_threshold: u64,
    /// Burst size that must be exceeded within one window (paper: 10).
    burst_threshold: usize,
    /// Burst window length (paper: 1 second).
    burst_window: Duration,
}

impl Default for FalsePositiveDetector {
    fn default() -> Self {
        FalsePositiveDetector::new(100, 10, Duration::from_secs(1))
    }
}

impl FalsePositiveDetector {
    /// Creates a detector with explicit thresholds.
    pub fn new(
        instantiation_threshold: u64,
        burst_threshold: usize,
        burst_window: Duration,
    ) -> Self {
        FalsePositiveDetector {
            stats: Vec::new(),
            instantiation_threshold,
            burst_threshold,
            burst_window,
        }
    }

    fn ensure(&mut self, sig_index: usize) -> &mut SigStats {
        if self.stats.len() <= sig_index {
            self.stats.resize_with(sig_index + 1, SigStats::default);
        }
        &mut self.stats[sig_index]
    }

    /// Records an avoidance instantiation of signature `sig_index` at time
    /// `now`. Returns `true` if this event makes the signature a
    /// false-positive suspect (fires once per signature).
    pub fn record_instantiation(&mut self, sig_index: usize, now: Instant) -> bool {
        let burst_threshold = self.burst_threshold;
        let burst_window = self.burst_window;
        let instantiation_threshold = self.instantiation_threshold;
        let s = self.ensure(sig_index);
        s.instantiations += 1;
        s.recent.push_back(now);
        while let Some(front) = s.recent.front() {
            if now.saturating_duration_since(*front) > burst_window {
                s.recent.pop_front();
            } else {
                break;
            }
        }
        if s.recent.len() > burst_threshold {
            s.burst_seen = true;
        }
        if !s.warned
            && s.true_positives == 0
            && s.burst_seen
            && s.instantiations >= instantiation_threshold
        {
            s.warned = true;
            return true;
        }
        false
    }

    /// Records a true positive for `sig_index`: an actual deadlock
    /// matching the signature occurred (so avoidances of it are genuine).
    pub fn record_true_positive(&mut self, sig_index: usize) {
        self.ensure(sig_index).true_positives += 1;
    }

    /// Instantiation count of `sig_index`.
    pub fn instantiations(&self, sig_index: usize) -> u64 {
        self.stats.get(sig_index).map_or(0, |s| s.instantiations)
    }

    /// True-positive count of `sig_index`.
    pub fn true_positives(&self, sig_index: usize) -> u64 {
        self.stats.get(sig_index).map_or(0, |s| s.true_positives)
    }

    /// Whether `sig_index` has been flagged as a suspected false positive.
    pub fn is_suspect(&self, sig_index: usize) -> bool {
        self.stats.get(sig_index).is_some_and(|s| s.warned)
    }

    /// Forgets everything (e.g. after the user confirms keeping a
    /// signature, or the history is replaced wholesale).
    pub fn reset(&mut self) {
        self.stats.clear();
    }

    /// Forgets stats for one signature (history slot reused after merge).
    pub fn reset_signature(&mut self, sig_index: usize) {
        if let Some(s) = self.stats.get_mut(sig_index) {
            *s = SigStats::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> Instant {
        Instant::from_nanos((secs * 1e9) as u64)
    }

    #[test]
    fn warns_after_burst_and_threshold() {
        let mut d = FalsePositiveDetector::default();
        let mut warned = false;
        // 100 instantiations packed into one second: burst + threshold.
        for i in 0..100 {
            warned |= d.record_instantiation(0, t(i as f64 * 0.005));
        }
        assert!(warned);
        assert!(d.is_suspect(0));
    }

    #[test]
    fn warning_fires_exactly_once() {
        let mut d = FalsePositiveDetector::default();
        let mut count = 0;
        for i in 0..300 {
            if d.record_instantiation(0, t(i as f64 * 0.005)) {
                count += 1;
            }
        }
        assert_eq!(count, 1);
    }

    #[test]
    fn no_warning_without_burst() {
        // 150 instantiations, but spaced 1 per second: never >10 in 1 s.
        let mut d = FalsePositiveDetector::default();
        for i in 0..150 {
            assert!(!d.record_instantiation(0, t(i as f64)));
        }
        assert!(!d.is_suspect(0));
        assert_eq!(d.instantiations(0), 150);
    }

    #[test]
    fn no_warning_below_instantiation_threshold() {
        // A strong burst of 50 is still below the 100 threshold.
        let mut d = FalsePositiveDetector::default();
        for i in 0..50 {
            assert!(!d.record_instantiation(0, t(i as f64 * 0.005)));
        }
        assert!(!d.is_suspect(0));
    }

    #[test]
    fn true_positive_suppresses_warning() {
        let mut d = FalsePositiveDetector::default();
        d.record_true_positive(0);
        for i in 0..500 {
            assert!(!d.record_instantiation(0, t(i as f64 * 0.001)));
        }
        assert!(!d.is_suspect(0));
        assert_eq!(d.true_positives(0), 1);
    }

    #[test]
    fn burst_earlier_then_slow_accumulation_still_warns() {
        // Burst happens early (instantiations 0..12 in 0.1 s), then the
        // count creeps up slowly; once it crosses 100 the warning fires.
        let mut d = FalsePositiveDetector::default();
        let mut warned = false;
        for i in 0..12 {
            warned |= d.record_instantiation(0, t(i as f64 * 0.005));
        }
        assert!(!warned);
        for i in 0..90 {
            warned |= d.record_instantiation(0, t(10.0 + i as f64 * 2.0));
        }
        assert!(warned);
    }

    #[test]
    fn signatures_tracked_independently() {
        let mut d = FalsePositiveDetector::default();
        for i in 0..100 {
            d.record_instantiation(3, t(i as f64 * 0.005));
        }
        assert!(d.is_suspect(3));
        assert!(!d.is_suspect(0));
        assert_eq!(d.instantiations(0), 0);
    }

    #[test]
    fn reset_signature_clears_slot() {
        let mut d = FalsePositiveDetector::default();
        for i in 0..100 {
            d.record_instantiation(0, t(i as f64 * 0.005));
        }
        assert!(d.is_suspect(0));
        d.reset_signature(0);
        assert!(!d.is_suspect(0));
        assert_eq!(d.instantiations(0), 0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut d = FalsePositiveDetector::default();
        d.record_true_positive(2);
        d.reset();
        assert_eq!(d.true_positives(2), 0);
    }

    #[test]
    fn custom_thresholds_respected() {
        let mut d = FalsePositiveDetector::new(5, 2, Duration::from_secs(1));
        let mut warned = false;
        for i in 0..5 {
            warned |= d.record_instantiation(0, t(i as f64 * 0.1));
        }
        assert!(warned);
    }

    #[test]
    fn exactly_burst_threshold_in_window_is_not_enough() {
        // "more than 10": exactly 10 in a window must not set the flag.
        let mut d = FalsePositiveDetector::new(10, 10, Duration::from_secs(1));
        let mut warned = false;
        for i in 0..10 {
            // 10 events spread over exactly 0.9s: window holds 10, not >10.
            warned |= d.record_instantiation(0, t(i as f64 * 0.1));
        }
        assert!(!warned);
        assert!(!d.is_suspect(0));
    }
}
