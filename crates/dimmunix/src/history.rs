//! The persistent deadlock history.
//!
//! Dimmunix "extracts the signature of the deadlock, stores it in a
//! persistent history, then alters future thread schedules … to avoid
//! execution flows matching the signature" (§II-A). The history is a set
//! of signatures persisted as a text file, one `sig … end` block per
//! signature (mirroring the original Dimmunix history format).

use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

use crate::signature::{ParseSignatureError, SigOrigin, Signature};

/// What [`History::add`] did with a signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddOutcome {
    /// The signature was new and was appended.
    Added,
    /// An identical signature was already present.
    Duplicate,
    /// The signature was merged into an existing signature of the same
    /// bug (generalization, §III-D); the index of the merged entry.
    Merged(usize),
}

/// An in-memory, persistable set of deadlock signatures.
#[derive(Debug, Clone, Default)]
pub struct History {
    sigs: Vec<Signature>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// The signatures, in insertion order.
    pub fn signatures(&self) -> &[Signature] {
        &self.sigs
    }

    /// Number of signatures.
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }

    /// Appends `sig` verbatim if not an exact duplicate, without
    /// attempting generalization. Dimmunix's detection path uses this;
    /// the agent uses [`History::add_generalizing`].
    pub fn add(&mut self, sig: Signature) -> AddOutcome {
        if self.sigs.contains(&sig) {
            return AddOutcome::Duplicate;
        }
        self.sigs.push(sig);
        AddOutcome::Added
    }

    /// Adds `sig`, first trying to merge it with an existing signature of
    /// the same bug under the depth rule (`min_depth`, the agent passes
    /// 5). Replaces the matched signature with the generalization.
    pub fn add_generalizing(&mut self, sig: Signature, min_depth: usize) -> AddOutcome {
        if self.sigs.contains(&sig) {
            return AddOutcome::Duplicate;
        }
        for (i, existing) in self.sigs.iter().enumerate() {
            if let Some(merged) = existing.merge(&sig, min_depth) {
                if merged == *existing {
                    // Generalization changed nothing: the incoming
                    // signature was already covered.
                    return AddOutcome::Duplicate;
                }
                self.sigs[i] = merged;
                return AddOutcome::Merged(i);
            }
        }
        self.sigs.push(sig);
        AddOutcome::Added
    }

    /// Merges a batched delta of downloaded signatures into the history
    /// in one pass, generalizing each against the existing entries
    /// exactly as [`History::add_generalizing`] does, and reports what
    /// happened in aggregate. This is the history-side counterpart of
    /// the client's windowed `GET_DELTA` sync: one report per window
    /// instead of one [`AddOutcome`] per signature.
    ///
    /// Signatures inside the batch also generalize against *each other*
    /// (a window often carries several manifestations of one bug), in
    /// batch order — the same result as feeding them one at a time.
    pub fn merge_batch(
        &mut self,
        sigs: impl IntoIterator<Item = Signature>,
        min_depth: usize,
    ) -> BatchMergeReport {
        let mut report = BatchMergeReport::default();
        for sig in sigs {
            match self.add_generalizing(sig, min_depth) {
                AddOutcome::Added => report.added += 1,
                AddOutcome::Merged(_) => report.merged += 1,
                AddOutcome::Duplicate => report.duplicates += 1,
            }
        }
        report
    }

    /// Signatures representing the same bug as `sig`.
    pub fn same_bug(&self, sig: &Signature) -> Vec<&Signature> {
        self.sigs.iter().filter(|s| s.same_bug(sig)).collect()
    }

    /// Removes the signature at `index`.
    pub fn remove(&mut self, index: usize) -> Signature {
        self.sigs.remove(index)
    }

    /// Removes all signatures, returning them.
    pub fn clear(&mut self) -> Vec<Signature> {
        std::mem::take(&mut self.sigs)
    }

    /// Serializes the history to its text form.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# dimmunix deadlock history v1\n");
        for s in &self.sigs {
            out.push_str(&s.to_string());
            out.push('\n');
        }
        out
    }

    /// Parses a history from its text form.
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::Parse`] on malformed blocks; parsing is
    /// strict because a corrupt history could silently disable avoidance.
    pub fn from_text(text: &str) -> Result<Self, HistoryError> {
        let mut sigs = Vec::new();
        let mut block = String::new();
        for line in text.lines() {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            block.push_str(trimmed);
            block.push('\n');
            if trimmed == "end" {
                let sig: Signature = block.trim_end().parse().map_err(HistoryError::Parse)?;
                sigs.push(sig);
                block.clear();
            }
        }
        if !block.is_empty() {
            return Err(HistoryError::Parse(ParseSignatureError::new(
                "truncated signature block at end of file",
            )));
        }
        Ok(History { sigs })
    }

    /// Writes the history to `writer`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_to(&self, mut writer: impl Write) -> io::Result<()> {
        writer.write_all(self.to_text().as_bytes())
    }

    /// Reads a history from `reader`.
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError`] on I/O or parse failures.
    pub fn load_from(mut reader: impl Read) -> Result<Self, HistoryError> {
        let mut text = String::new();
        reader.read_to_string(&mut text).map_err(HistoryError::Io)?;
        History::from_text(&text)
    }

    /// Saves to a file path (atomic: writes `path.tmp` then renames).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_to_path(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_text())?;
        std::fs::rename(&tmp, path)
    }

    /// Loads from a file path; a missing file yields an empty history
    /// (first run of an application).
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError`] on read or parse failures other than
    /// file-not-found.
    pub fn load_from_path(path: impl AsRef<Path>) -> Result<Self, HistoryError> {
        match std::fs::read_to_string(path) {
            Ok(text) => History::from_text(&text),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(History::new()),
            Err(e) => Err(HistoryError::Io(e)),
        }
    }

    /// Counts signatures by origin `(local, remote)`.
    pub fn count_by_origin(&self) -> (usize, usize) {
        let local = self
            .sigs
            .iter()
            .filter(|s| s.origin() == SigOrigin::Local)
            .count();
        (local, self.sigs.len() - local)
    }
}

impl FromIterator<Signature> for History {
    fn from_iter<T: IntoIterator<Item = Signature>>(iter: T) -> Self {
        let mut h = History::new();
        for s in iter {
            h.add(s);
        }
        h
    }
}

impl Extend<Signature> for History {
    fn extend<T: IntoIterator<Item = Signature>>(&mut self, iter: T) {
        for s in iter {
            self.add(s);
        }
    }
}

/// Aggregate outcome of [`History::merge_batch`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchMergeReport {
    /// Signatures appended as new history entries.
    pub added: usize,
    /// Signatures generalized into an existing entry.
    pub merged: usize,
    /// Signatures already covered (exact duplicates or no-op merges).
    pub duplicates: usize,
}

impl BatchMergeReport {
    /// Signatures that changed the history (`added + merged`).
    pub fn changed(&self) -> usize {
        self.added + self.merged
    }
}

/// Errors from history persistence.
#[derive(Debug)]
pub enum HistoryError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed history text.
    Parse(ParseSignatureError),
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryError::Io(e) => write!(f, "history i/o error: {e}"),
            HistoryError::Parse(e) => write!(f, "history parse error: {e}"),
        }
    }
}

impl std::error::Error for HistoryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HistoryError::Io(e) => Some(e),
            HistoryError::Parse(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{CallStack, Frame};
    use crate::signature::SigEntry;

    fn cs(frames: &[(&str, u32)]) -> CallStack {
        frames
            .iter()
            .map(|(m, l)| Frame::new("app.C", *m, *l))
            .collect()
    }

    fn sig(tag: u32, depth: usize) -> Signature {
        let mut outer1 = vec![("fooA", tag * 100 + 10)];
        let mut outer2 = vec![("fooB", tag * 100 + 20)];
        for i in 0..depth {
            outer1.insert(0, ("deep", tag * 100 + 30 + i as u32));
            outer2.insert(0, ("deep", tag * 100 + 60 + i as u32));
        }
        Signature::local(vec![
            SigEntry::new(cs(&outer1), cs(&[("barB", tag * 100 + 11)])),
            SigEntry::new(cs(&outer2), cs(&[("barA", tag * 100 + 21)])),
        ])
    }

    #[test]
    fn add_and_dedup() {
        let mut h = History::new();
        assert_eq!(h.add(sig(1, 0)), AddOutcome::Added);
        assert_eq!(h.add(sig(1, 0)), AddOutcome::Duplicate);
        assert_eq!(h.add(sig(2, 0)), AddOutcome::Added);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn generalizing_add_merges_same_bug() {
        let mut h = History::new();
        h.add(sig(1, 3)); // deeper manifestation
        match h.add_generalizing(sig(1, 1), 0) {
            AddOutcome::Merged(0) => {}
            other => panic!("expected merge, got {other:?}"),
        }
        assert_eq!(h.len(), 1);
        // The merged signature is the common suffix (depth 2 outers).
        assert_eq!(h.signatures()[0].min_outer_depth(), 2);
    }

    #[test]
    fn generalizing_add_keeps_distinct_bugs() {
        let mut h = History::new();
        h.add_generalizing(sig(1, 0), 0);
        h.add_generalizing(sig(2, 0), 0);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn generalizing_add_covered_signature_is_duplicate() {
        let mut h = History::new();
        h.add(sig(1, 1));
        // sig(1, 1) merged with a deeper manifestation keeps the existing
        // (shorter) suffix: nothing changes.
        assert_eq!(h.add_generalizing(sig(1, 4), 0), AddOutcome::Duplicate);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn merge_batch_classifies_each_signature() {
        let mut h = History::new();
        h.add(sig(1, 3));
        // A batched delta: one deeper manifestation of bug 1 (merges),
        // one fresh bug (adds), one exact duplicate of the fresh bug.
        let report = h.merge_batch(vec![sig(1, 1), sig(2, 0), sig(2, 0)], 0);
        assert_eq!(
            report,
            BatchMergeReport {
                added: 1,
                merged: 1,
                duplicates: 1
            }
        );
        assert_eq!(report.changed(), 2);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn merge_batch_equals_sequential_adds() {
        // Batch order semantics: one merge_batch call must leave the
        // history exactly as the equivalent add_generalizing sequence.
        let batch = vec![sig(1, 2), sig(2, 0), sig(1, 0), sig(3, 1)];
        let mut batched = History::new();
        batched.merge_batch(batch.clone(), 0);
        let mut sequential = History::new();
        for s in batch {
            sequential.add_generalizing(s, 0);
        }
        assert_eq!(batched.signatures(), sequential.signatures());
    }

    #[test]
    fn merge_batch_empty_is_noop() {
        let mut h = History::new();
        h.add(sig(1, 0));
        let report = h.merge_batch(Vec::new(), 5);
        assert_eq!(report, BatchMergeReport::default());
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn text_roundtrip() {
        let mut h = History::new();
        h.add(sig(1, 2));
        h.add(sig(2, 0).with_origin(SigOrigin::Remote));
        let text = h.to_text();
        let parsed = History::from_text(&text).unwrap();
        assert_eq!(parsed.signatures(), h.signatures());
        assert_eq!(parsed.count_by_origin(), (1, 1));
    }

    #[test]
    fn empty_and_comment_lines_ignored() {
        let text = "# comment\n\n# another\n";
        let h = History::from_text(text).unwrap();
        assert!(h.is_empty());
    }

    #[test]
    fn truncated_block_rejected() {
        let mut text = sig(1, 0).to_string();
        text.truncate(text.len() - 4); // drop "end"
        assert!(matches!(
            History::from_text(&text),
            Err(HistoryError::Parse(_))
        ));
    }

    #[test]
    fn corrupt_line_rejected() {
        let text = "sig local\nouter garbage-without-hash-sep:1\ninner a#b:1\nend\n";
        assert!(History::from_text(text).is_err());
    }

    #[test]
    fn file_roundtrip_and_missing_file() {
        let dir = std::env::temp_dir().join(format!("dimmunix-hist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("app.history");

        // Missing file => empty history.
        let h0 = History::load_from_path(&path).unwrap();
        assert!(h0.is_empty());

        let mut h = History::new();
        h.add(sig(1, 2));
        h.save_to_path(&path).unwrap();
        let h2 = History::load_from_path(&path).unwrap();
        assert_eq!(h2.signatures(), h.signatures());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reader_writer_roundtrip() {
        let mut h = History::new();
        h.add(sig(3, 1));
        let mut buf = Vec::new();
        h.save_to(&mut buf).unwrap();
        let h2 = History::load_from(&buf[..]).unwrap();
        assert_eq!(h2.signatures(), h.signatures());
    }

    #[test]
    fn same_bug_lookup() {
        let mut h = History::new();
        h.add(sig(1, 0));
        h.add(sig(2, 0));
        assert_eq!(h.same_bug(&sig(1, 5)).len(), 1);
        assert_eq!(h.same_bug(&sig(9, 0)).len(), 0);
    }

    #[test]
    fn collect_and_extend() {
        let h: History = vec![sig(1, 0), sig(2, 0), sig(1, 0)].into_iter().collect();
        assert_eq!(h.len(), 2); // dedup applied
        let mut h2 = History::new();
        h2.extend(h.signatures().iter().cloned());
        assert_eq!(h2.len(), 2);
    }

    #[test]
    fn remove_and_clear() {
        let mut h = History::new();
        h.add(sig(1, 0));
        h.add(sig(2, 0));
        let removed = h.remove(0);
        assert!(removed.same_bug(&sig(1, 0)));
        assert_eq!(h.len(), 1);
        let all = h.clear();
        assert_eq!(all.len(), 1);
        assert!(h.is_empty());
    }
}
