//! Call-stack frames and call stacks.
//!
//! A signature call stack "is encoded as a sequence of frames
//! `[c1.m1:l1:h1, …, cn.mn:ln:hn]`, where ci are class names, mi are
//! method names, li are line numbers, and hi is the hash of class ci's
//! bytecode" (§III-C3). Frame *n* is the **top** frame; in our
//! representation the top frame is the *last* element, so the paper's
//! "call stack suffix" (the innermost frames) is a `Vec` tail.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use communix_crypto::Digest;

/// A source location: class, method, line. Two frames denote the same
/// *lock statement* iff their sites are equal — hashes are deliberately
/// excluded (they denote code *versions*, not locations, and are only
/// consulted by validation).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Site {
    /// Fully qualified class name.
    pub class: Arc<str>,
    /// Method name.
    pub method: Arc<str>,
    /// Source line.
    pub line: u32,
}

impl Site {
    /// Creates a site.
    pub fn new(class: impl AsRef<str>, method: impl AsRef<str>, line: u32) -> Self {
        Site {
            class: Arc::from(class.as_ref()),
            method: Arc::from(method.as_ref()),
            line,
        }
    }
}

impl fmt::Debug for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Site({self})")
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}:{}", self.class, self.method, self.line)
    }
}

/// One call-stack frame: a [`Site`] plus an optional bytecode hash.
///
/// Dimmunix produces frames without hashes; the Communix plugin "attaches
/// to each call stack frame of the signature the hash of the class
/// bytecode containing that frame" (§III-C) before upload.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Frame {
    /// Source location.
    pub site: Site,
    /// Bytecode hash of the declaring class, if attached.
    pub hash: Option<Digest>,
}

impl Frame {
    /// Creates a frame without a hash.
    pub fn new(class: impl AsRef<str>, method: impl AsRef<str>, line: u32) -> Self {
        Frame {
            site: Site::new(class, method, line),
            hash: None,
        }
    }

    /// Creates a frame with a hash attached.
    pub fn with_hash(
        class: impl AsRef<str>,
        method: impl AsRef<str>,
        line: u32,
        hash: Digest,
    ) -> Self {
        Frame {
            site: Site::new(class, method, line),
            hash: Some(hash),
        }
    }

    /// Location equality, ignoring hashes. All signature matching and
    /// merging compares frames this way; hashes matter only to the
    /// validation pipeline.
    pub fn site_eq(&self, other: &Frame) -> bool {
        self.site == other.site
    }
}

impl fmt::Debug for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Frame({self})")
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Serialized form: class#method:line[:hash]. `#` separates class
        // from method so dotted class names parse unambiguously.
        write!(
            f,
            "{}#{}:{}",
            self.site.class, self.site.method, self.site.line
        )?;
        if let Some(h) = &self.hash {
            write!(f, ":{h}")?;
        }
        Ok(())
    }
}

/// Error parsing a [`Frame`] or [`CallStack`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFrameError {
    msg: String,
}

impl ParseFrameError {
    fn new(msg: impl Into<String>) -> Self {
        ParseFrameError { msg: msg.into() }
    }
}

impl fmt::Display for ParseFrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid frame: {}", self.msg)
    }
}

impl std::error::Error for ParseFrameError {}

impl FromStr for Frame {
    type Err = ParseFrameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (class, rest) = s
            .split_once('#')
            .ok_or_else(|| ParseFrameError::new(format!("missing '#' in {s:?}")))?;
        if class.is_empty() {
            return Err(ParseFrameError::new("empty class name"));
        }
        let mut parts = rest.split(':');
        let method = parts
            .next()
            .filter(|m| !m.is_empty())
            .ok_or_else(|| ParseFrameError::new("empty method name"))?;
        let line: u32 = parts
            .next()
            .ok_or_else(|| ParseFrameError::new("missing line number"))?
            .parse()
            .map_err(|e| ParseFrameError::new(format!("bad line number: {e}")))?;
        let hash = match parts.next() {
            None => None,
            Some(h) => Some(
                Digest::from_hex(h).map_err(|e| ParseFrameError::new(format!("bad hash: {e}")))?,
            ),
        };
        if parts.next().is_some() {
            return Err(ParseFrameError::new("trailing fields"));
        }
        Ok(Frame {
            site: Site::new(class, method, line),
            hash,
        })
    }
}

/// A call stack: outermost frame first, **top (innermost) frame last**.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CallStack {
    frames: Vec<Frame>,
}

impl CallStack {
    /// Creates a stack from frames (outermost first).
    pub fn new(frames: Vec<Frame>) -> Self {
        CallStack { frames }
    }

    /// An empty stack.
    pub fn empty() -> Self {
        CallStack::default()
    }

    /// The frames, outermost first.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Mutable access for hash attachment (plugin) and trimming
    /// (validation).
    pub fn frames_mut(&mut self) -> &mut Vec<Frame> {
        &mut self.frames
    }

    /// The top (innermost) frame — the paper's "lock statement" when this
    /// is an outer or inner stack of a signature.
    pub fn top(&self) -> Option<&Frame> {
        self.frames.last()
    }

    /// Number of frames — the paper's "depth".
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Whether the stack has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Pushes a frame on top.
    pub fn push(&mut self, frame: Frame) {
        self.frames.push(frame);
    }

    /// Pops the top frame.
    pub fn pop(&mut self) -> Option<Frame> {
        self.frames.pop()
    }

    /// Whether `self` is a suffix of `other`, comparing frame *sites*
    /// (hashes ignored). An empty stack is a suffix of everything.
    ///
    /// This is the signature-matching primitive: a runtime stack matches a
    /// signature stack when the signature stack is a suffix of it.
    pub fn is_suffix_of(&self, other: &CallStack) -> bool {
        if self.depth() > other.depth() {
            return false;
        }
        let offset = other.depth() - self.depth();
        self.frames
            .iter()
            .zip(&other.frames[offset..])
            .all(|(a, b)| a.site_eq(b))
    }

    /// The longest common suffix of two stacks (site comparison), used by
    /// signature generalization (§III-D). Hashes are taken from `self`'s
    /// frames.
    pub fn longest_common_suffix(&self, other: &CallStack) -> CallStack {
        let mut n = 0;
        let a = &self.frames;
        let b = &other.frames;
        while n < a.len() && n < b.len() && a[a.len() - 1 - n].site_eq(&b[b.len() - 1 - n]) {
            n += 1;
        }
        CallStack {
            frames: a[a.len() - n..].to_vec(),
        }
    }

    /// Keeps only the top `n` frames (no-op if already ≤ n deep).
    pub fn truncate_to_suffix(&mut self, n: usize) {
        if self.frames.len() > n {
            self.frames.drain(..self.frames.len() - n);
        }
    }
}

impl fmt::Debug for CallStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CallStack[{self}]")
    }
}

impl fmt::Display for CallStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for fr in &self.frames {
            if !first {
                f.write_str("|")?;
            }
            write!(f, "{fr}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromStr for CallStack {
    type Err = ParseFrameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Ok(CallStack::empty());
        }
        let frames = s
            .split('|')
            .map(Frame::from_str)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CallStack { frames })
    }
}

impl FromIterator<Frame> for CallStack {
    fn from_iter<T: IntoIterator<Item = Frame>>(iter: T) -> Self {
        CallStack {
            frames: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use communix_crypto::sha256;

    fn stack(names: &[(&str, u32)]) -> CallStack {
        names
            .iter()
            .map(|(m, l)| Frame::new("app.C", *m, *l))
            .collect()
    }

    #[test]
    fn frame_roundtrip_without_hash() {
        let f = Frame::new("org.jboss.X", "run", 42);
        let s = f.to_string();
        assert_eq!(s, "org.jboss.X#run:42");
        assert_eq!(s.parse::<Frame>().unwrap(), f);
    }

    #[test]
    fn frame_roundtrip_with_hash() {
        let f = Frame::with_hash("a.B", "m", 7, sha256(b"x"));
        let s = f.to_string();
        assert_eq!(s.parse::<Frame>().unwrap(), f);
    }

    #[test]
    fn frame_parse_errors() {
        assert!("noHash".parse::<Frame>().is_err());
        assert!("#m:1".parse::<Frame>().is_err());
        assert!("c#:1".parse::<Frame>().is_err());
        assert!("c#m".parse::<Frame>().is_err());
        assert!("c#m:xyz".parse::<Frame>().is_err());
        assert!("c#m:1:nothex".parse::<Frame>().is_err());
        assert!("c#m:1:aa:bb".parse::<Frame>().is_err());
    }

    #[test]
    fn site_eq_ignores_hash() {
        let a = Frame::new("a.B", "m", 1);
        let b = Frame::with_hash("a.B", "m", 1, sha256(b"v2"));
        assert!(a.site_eq(&b));
        assert_ne!(a, b); // full equality does see the hash
    }

    #[test]
    fn suffix_matching() {
        let sig = stack(&[("mid", 2), ("top", 3)]);
        let runtime = stack(&[("bottom", 1), ("mid", 2), ("top", 3)]);
        assert!(sig.is_suffix_of(&runtime));
        assert!(!runtime.is_suffix_of(&sig));
        // Top frame must coincide.
        let other = stack(&[("mid", 2), ("different", 9)]);
        assert!(!other.is_suffix_of(&runtime));
    }

    #[test]
    fn empty_stack_is_suffix_of_everything() {
        let e = CallStack::empty();
        assert!(e.is_suffix_of(&stack(&[("m", 1)])));
        assert!(e.is_suffix_of(&e));
    }

    #[test]
    fn equal_stacks_are_suffixes() {
        let a = stack(&[("m", 1), ("n", 2)]);
        assert!(a.is_suffix_of(&a.clone()));
    }

    #[test]
    fn suffix_ignores_hashes() {
        let mut sig = stack(&[("top", 3)]);
        sig.frames_mut()[0].hash = Some(sha256(b"v1"));
        let mut rt = stack(&[("bottom", 1), ("top", 3)]);
        rt.frames_mut()[1].hash = Some(sha256(b"v2"));
        assert!(sig.is_suffix_of(&rt));
    }

    #[test]
    fn longest_common_suffix_basic() {
        let a = stack(&[("x", 1), ("mid", 2), ("top", 3)]);
        let b = stack(&[("y", 9), ("mid", 2), ("top", 3)]);
        let lcs = a.longest_common_suffix(&b);
        assert_eq!(lcs, stack(&[("mid", 2), ("top", 3)]));
    }

    #[test]
    fn longest_common_suffix_disjoint_is_empty() {
        let a = stack(&[("x", 1)]);
        let b = stack(&[("y", 2)]);
        assert!(a.longest_common_suffix(&b).is_empty());
    }

    #[test]
    fn longest_common_suffix_identical_is_whole() {
        let a = stack(&[("x", 1), ("top", 2)]);
        assert_eq!(a.longest_common_suffix(&a.clone()), a);
    }

    #[test]
    fn truncate_to_suffix_keeps_top() {
        let mut a = stack(&[("a", 1), ("b", 2), ("c", 3)]);
        a.truncate_to_suffix(2);
        assert_eq!(a, stack(&[("b", 2), ("c", 3)]));
        a.truncate_to_suffix(10); // no-op
        assert_eq!(a.depth(), 2);
    }

    #[test]
    fn callstack_roundtrip() {
        let a = stack(&[("a", 1), ("b", 2)]);
        let s = a.to_string();
        assert_eq!(s.parse::<CallStack>().unwrap(), a);
        assert_eq!("".parse::<CallStack>().unwrap(), CallStack::empty());
    }

    #[test]
    fn push_pop_top() {
        let mut s = CallStack::empty();
        s.push(Frame::new("c.C", "a", 1));
        s.push(Frame::new("c.C", "b", 2));
        assert_eq!(s.top().unwrap().site.method.as_ref(), "b");
        assert_eq!(s.depth(), 2);
        s.pop();
        assert_eq!(s.top().unwrap().site.method.as_ref(), "a");
    }
}
