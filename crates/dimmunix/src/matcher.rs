//! Signature-instantiation matching: the avoidance decision kernel.
//!
//! "For a signature with outer call stacks CS1, …, CSn to be instantiated,
//! there must exist threads t1, …, tn that either hold or are block
//! waiting for locks l1, …, ln while having call stacks CS1, …, CSn. If no
//! signature from the deadlock history can be instantiated, the avoidance
//! module allows the caller thread to proceed with the lock acquisition;
//! otherwise, it suspends the thread." (§II-A)
//!
//! The matcher answers one question: *would adding this hold-or-wait
//! record complete an instantiation of any history signature?* Threads and
//! locks must be pairwise distinct across positions, so this is a small
//! exact-matching problem solved by backtracking (deadlock arity is 2–4 in
//! practice).

use std::collections::HashMap;

use crate::frame::{CallStack, Site};
use crate::history::History;
use crate::ids::{LockId, ThreadId};

/// A hold-or-wait record: thread `thread` holds (or waits for) `lock`,
/// and had call stack `stack` at the acquisition (or at the blocked
/// request).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockRecord {
    /// The thread.
    pub thread: ThreadId,
    /// The lock held or waited for.
    pub lock: LockId,
    /// Call stack at acquisition / blocked request.
    pub stack: CallStack,
}

/// A completed instantiation found by the matcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instantiation {
    /// Index of the instantiated signature in the history.
    pub sig_index: usize,
    /// The records filling the signature positions (threads and locks are
    /// pairwise distinct). Includes the candidate record.
    pub participants: Vec<(ThreadId, LockId)>,
}

/// Pre-indexed outer stacks of every history signature.
#[derive(Debug, Clone, Default)]
pub struct AvoidanceMatcher {
    /// Outer stacks per signature.
    positions: Vec<Vec<CallStack>>,
    /// Top-frame site → (signature, position) pairs whose outer stack ends
    /// at that site. Suffix matching requires equal top frames, so this
    /// prunes candidates to near-nothing on the hot path.
    by_top: HashMap<Site, Vec<(usize, usize)>>,
    /// Cumulative count of stack-suffix comparisons performed — the cost
    /// driver of signature matching. Runtimes convert the delta per
    /// request into simulated time, reproducing the paper's observation
    /// that shallow (depth-1) signatures cost far more than deep ones.
    work: u64,
}

impl AvoidanceMatcher {
    /// Builds a matcher over the signatures of `history`.
    pub fn new(history: &History) -> Self {
        let mut m = AvoidanceMatcher::default();
        m.rebuild(history);
        m
    }

    /// Rebuilds the index after the history changed.
    pub fn rebuild(&mut self, history: &History) {
        self.positions.clear();
        self.by_top.clear();
        for (si, sig) in history.signatures().iter().enumerate() {
            let outers: Vec<CallStack> = sig.entries().iter().map(|e| e.outer.clone()).collect();
            for (pi, outer) in outers.iter().enumerate() {
                if let Some(top) = outer.top() {
                    self.by_top
                        .entry(top.site.clone())
                        .or_default()
                        .push((si, pi));
                }
            }
            self.positions.push(outers);
        }
    }

    /// Cumulative suffix-comparison count (monotonic). The difference
    /// across a call is the matching work that call performed.
    pub fn work(&self) -> u64 {
        self.work
    }

    /// Number of indexed signatures.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether any signatures are indexed.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Would adding `candidate` to `records` complete an instantiation of
    /// any signature? Returns the first instantiation found.
    ///
    /// `records` are the current hold-or-wait records of all *other*
    /// activity; records belonging to `candidate.thread` are ignored for
    /// the other positions (a deadlock needs n distinct threads).
    pub fn would_instantiate(
        &mut self,
        candidate: &LockRecord,
        records: &[LockRecord],
    ) -> Option<Instantiation> {
        let top = candidate.stack.top()?;
        let slots = self.by_top.get(&top.site)?;
        let slots = slots.clone();
        for (si, pi) in slots {
            self.work += 1;
            if !self.positions[si][pi].is_suffix_of(&candidate.stack) {
                continue;
            }
            if let Some(participants) = self.try_complete(si, pi, candidate, records) {
                return Some(Instantiation {
                    sig_index: si,
                    participants,
                });
            }
        }
        None
    }

    /// Whether the current records alone (no candidate) instantiate
    /// signature `si`. Used by re-check logic and tests.
    pub fn is_instantiated(
        &mut self,
        si: usize,
        records: &[LockRecord],
    ) -> Option<Vec<(ThreadId, LockId)>> {
        let outers = self.positions.get(si)?.clone();
        let mut assignment: Vec<Option<(ThreadId, LockId)>> = vec![None; outers.len()];
        if self.backtrack(&outers, records, &mut assignment, 0, None) {
            Some(assignment.into_iter().flatten().collect())
        } else {
            None
        }
    }

    fn try_complete(
        &mut self,
        si: usize,
        pi: usize,
        candidate: &LockRecord,
        records: &[LockRecord],
    ) -> Option<Vec<(ThreadId, LockId)>> {
        let outers = self.positions[si].clone();
        let mut assignment: Vec<Option<(ThreadId, LockId)>> = vec![None; outers.len()];
        assignment[pi] = Some((candidate.thread, candidate.lock));
        if self.backtrack(&outers, records, &mut assignment, 0, Some(candidate.thread)) {
            Some(assignment.into_iter().flatten().collect())
        } else {
            None
        }
    }

    /// Fills unassigned positions from `records`, requiring pairwise
    /// distinct threads and locks. `exclude_thread` (the candidate's
    /// thread) may not fill any other position.
    fn backtrack(
        &mut self,
        outers: &[CallStack],
        records: &[LockRecord],
        assignment: &mut [Option<(ThreadId, LockId)>],
        from: usize,
        exclude_thread: Option<ThreadId>,
    ) -> bool {
        let Some(pos) = (from..outers.len()).find(|i| assignment[*i].is_none()) else {
            return true; // all positions filled
        };
        for r in records {
            if Some(r.thread) == exclude_thread {
                continue;
            }
            let clash = assignment
                .iter()
                .flatten()
                .any(|(t, l)| *t == r.thread || *l == r.lock);
            if clash {
                continue;
            }
            self.work += 1;
            if !outers[pos].is_suffix_of(&r.stack) {
                continue;
            }
            assignment[pos] = Some((r.thread, r.lock));
            if self.backtrack(outers, records, assignment, pos + 1, exclude_thread) {
                return true;
            }
            assignment[pos] = None;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;
    use crate::signature::{SigEntry, Signature};

    fn cs(frames: &[(&str, u32)]) -> CallStack {
        frames
            .iter()
            .map(|(m, l)| Frame::new("app.C", *m, *l))
            .collect()
    }

    /// Signature of the classic AB/BA deadlock: outer stacks end at
    /// lockA:10 and lockB:20.
    fn history_ab() -> History {
        let sig = Signature::local(vec![
            SigEntry::new(
                cs(&[("run", 1), ("lockA", 10)]),
                cs(&[("run", 1), ("lockA", 10), ("lockB", 11)]),
            ),
            SigEntry::new(
                cs(&[("run", 2), ("lockB", 20)]),
                cs(&[("run", 2), ("lockB", 20), ("lockA", 21)]),
            ),
        ]);
        let mut h = History::new();
        h.add(sig);
        h
    }

    fn rec(t: u64, l: u64, frames: &[(&str, u32)]) -> LockRecord {
        LockRecord {
            thread: ThreadId(t),
            lock: LockId(l),
            stack: cs(frames),
        }
    }

    #[test]
    fn completing_record_detected() {
        let mut m = AvoidanceMatcher::new(&history_ab());
        // Thread 1 already holds lock 1 at the lockA position.
        let records = vec![rec(1, 1, &[("main", 0), ("run", 1), ("lockA", 10)])];
        // Thread 2 now asks to hold lock 2 at the lockB position: together
        // they instantiate the signature.
        let cand = rec(2, 2, &[("main", 0), ("run", 2), ("lockB", 20)]);
        let inst = m.would_instantiate(&cand, &records).expect("instantiation");
        assert_eq!(inst.sig_index, 0);
        assert_eq!(inst.participants.len(), 2);
        assert!(inst.participants.contains(&(ThreadId(2), LockId(2))));
    }

    #[test]
    fn no_instantiation_without_partner() {
        let mut m = AvoidanceMatcher::new(&history_ab());
        let cand = rec(2, 2, &[("run", 2), ("lockB", 20)]);
        assert!(m.would_instantiate(&cand, &[]).is_none());
    }

    #[test]
    fn top_frame_mismatch_is_cheaply_rejected() {
        let mut m = AvoidanceMatcher::new(&history_ab());
        let records = vec![rec(1, 1, &[("run", 1), ("lockA", 10)])];
        let cand = rec(2, 2, &[("elsewhere", 99)]);
        assert!(m.would_instantiate(&cand, &records).is_none());
    }

    #[test]
    fn suffix_must_match_not_just_top() {
        let mut m = AvoidanceMatcher::new(&history_ab());
        let records = vec![rec(1, 1, &[("run", 1), ("lockA", 10)])];
        // Same top frame (lockB:20) but different caller (run:7 ≠ run:2):
        // signature stack [run:2, lockB:20] is NOT a suffix.
        let cand = rec(2, 2, &[("run", 7), ("lockB", 20)]);
        assert!(m.would_instantiate(&cand, &records).is_none());
    }

    #[test]
    fn distinct_threads_required() {
        let mut m = AvoidanceMatcher::new(&history_ab());
        // The same thread holds the lockA-position record.
        let records = vec![rec(2, 1, &[("run", 1), ("lockA", 10)])];
        let cand = rec(2, 2, &[("run", 2), ("lockB", 20)]);
        assert!(m.would_instantiate(&cand, &records).is_none());
    }

    #[test]
    fn distinct_locks_required() {
        let mut m = AvoidanceMatcher::new(&history_ab());
        // Partner record uses the same lock id as the candidate.
        let records = vec![rec(1, 2, &[("run", 1), ("lockA", 10)])];
        let cand = rec(2, 2, &[("run", 2), ("lockB", 20)]);
        assert!(m.would_instantiate(&cand, &records).is_none());
    }

    #[test]
    fn waiting_records_count_like_holds() {
        // The matcher is agnostic: callers pass wait records in `records`.
        let mut m = AvoidanceMatcher::new(&history_ab());
        let records = vec![rec(5, 9, &[("wrap", 3), ("run", 1), ("lockA", 10)])];
        let cand = rec(6, 8, &[("run", 2), ("lockB", 20)]);
        assert!(m.would_instantiate(&cand, &records).is_some());
    }

    #[test]
    fn three_thread_signature_requires_all_positions() {
        let sig = Signature::local(vec![
            SigEntry::new(cs(&[("p1", 1)]), cs(&[("q1", 2)])),
            SigEntry::new(cs(&[("p2", 3)]), cs(&[("q2", 4)])),
            SigEntry::new(cs(&[("p3", 5)]), cs(&[("q3", 6)])),
        ]);
        let mut h = History::new();
        h.add(sig);
        let mut m = AvoidanceMatcher::new(&h);

        let r1 = rec(1, 1, &[("p1", 1)]);
        let r2 = rec(2, 2, &[("p2", 3)]);
        let cand = rec(3, 3, &[("p3", 5)]);
        // Only one partner: incomplete.
        assert!(m
            .would_instantiate(&cand, std::slice::from_ref(&r1))
            .is_none());
        // Both partners: instantiation.
        let inst = m.would_instantiate(&cand, &[r1, r2]).unwrap();
        assert_eq!(inst.participants.len(), 3);
    }

    #[test]
    fn candidate_can_fill_any_matching_position() {
        let mut m = AvoidanceMatcher::new(&history_ab());
        // Candidate matches the lockA position; partner fills lockB.
        let records = vec![rec(9, 7, &[("run", 2), ("lockB", 20)])];
        let cand = rec(1, 1, &[("run", 1), ("lockA", 10)]);
        assert!(m.would_instantiate(&cand, &records).is_some());
    }

    #[test]
    fn is_instantiated_without_candidate() {
        let mut m = AvoidanceMatcher::new(&history_ab());
        let records = vec![
            rec(1, 1, &[("run", 1), ("lockA", 10)]),
            rec(2, 2, &[("run", 2), ("lockB", 20)]),
        ];
        assert!(m.is_instantiated(0, &records).is_some());
        assert!(m.is_instantiated(0, &records[..1]).is_none());
        assert!(m.is_instantiated(7, &records).is_none()); // no such sig
    }

    #[test]
    fn rebuild_reflects_history_changes() {
        let mut h = history_ab();
        let mut m = AvoidanceMatcher::new(&h);
        assert_eq!(m.len(), 1);
        h.clear();
        m.rebuild(&h);
        assert!(m.is_empty());
        let cand = rec(2, 2, &[("run", 2), ("lockB", 20)]);
        assert!(m
            .would_instantiate(&cand, &[rec(1, 1, &[("run", 1), ("lockA", 10)])])
            .is_none());
    }

    #[test]
    fn backtracking_explores_alternatives() {
        // Two records could fill position lockA, but only one leaves a
        // distinct lock for the candidate's position.
        let mut m = AvoidanceMatcher::new(&history_ab());
        let records = vec![
            rec(1, 2, &[("run", 1), ("lockA", 10)]), // clashes with cand's lock
            rec(3, 4, &[("run", 1), ("lockA", 10)]), // works
        ];
        let cand = rec(2, 2, &[("run", 2), ("lockB", 20)]);
        let inst = m.would_instantiate(&cand, &records).unwrap();
        assert!(inst.participants.contains(&(ThreadId(3), LockId(4))));
    }
}
