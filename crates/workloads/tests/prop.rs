//! Property-based tests for the workload generators: the evaluation's
//! validity rests on these generators hitting their targets exactly, at
//! every scale.

use communix_analysis::NestingAnalyzer;
use communix_bytecode::LoweredProgram;
use communix_dimmunix::{DimmunixConfig, History};
use communix_runtime::{SimConfig, Simulator};
use communix_workloads::{AppProfile, DeadlockApp, ManifestationApp, SigGen};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Profile generation is exact on its countable targets for
    /// arbitrary (feasible) profiles, and the nesting analysis re-derives
    /// the nested/analyzed split.
    #[test]
    fn profile_targets_hit_exactly(
        nested in 1usize..12,
        extra_analyzed in 0usize..10,
        extra_sites in 0usize..14,
        explicit in 0usize..7,
    ) {
        let analyzed = 2 * nested + extra_analyzed;
        let profile = AppProfile {
            name: "PropApp",
            loc: 3_000,
            sync_sites: analyzed + extra_sites,
            explicit_ops: explicit,
            nested,
            analyzed,
        };
        let program = profile.generate();
        let stats = program.stats();
        prop_assert_eq!(stats.sync_blocks_and_methods, profile.sync_sites);
        prop_assert_eq!(stats.explicit_sync_ops, profile.explicit_ops);

        let lowered = LoweredProgram::lower(&program);
        let report = NestingAnalyzer::new(&lowered).analyze();
        prop_assert_eq!(report.total_count(), profile.sync_sites);
        prop_assert_eq!(report.analyzed_count(), profile.analyzed);
        prop_assert_eq!(report.nested().len(), profile.nested);
    }

    /// The two-lock app deadlocks at every chain depth, its signature has
    /// the predicted outer depth, and the signature then prevents its own
    /// reoccurrence.
    #[test]
    fn deadlock_app_invariants(depth in 0usize..8) {
        let app = DeadlockApp::new(depth);
        let mut sim = Simulator::new(
            app.lowered(),
            DimmunixConfig::default(),
            SimConfig::default(),
        );
        let first = sim.run(&app.deadlock_specs());
        prop_assert_eq!(first.deadlocks.len(), 1);
        prop_assert_eq!(first.deadlocks[0].min_outer_depth(), depth + 2);
        let second = sim.run(&app.deadlock_specs());
        prop_assert!(second.deadlocks.is_empty());
        prop_assert!(second.all_finished());
    }

    /// Every manifestation of a multipath bug is the same bug; pairwise
    /// merges always land on the shared-suffix depth.
    #[test]
    fn manifestation_merge_depth(paths in 2usize..5, shared in 1usize..5) {
        let app = ManifestationApp::new(paths, shared);
        let mut sim = Simulator::new(
            app.lowered(),
            DimmunixConfig::detection_only(),
            SimConfig::default(),
        );
        let sigs: Vec<_> = (0..paths)
            .map(|k| {
                let o = sim.run(&app.deadlock_specs(k));
                prop_assert!(o.deadlocks.len() == 1, "path {} must deadlock", k);
                Ok(o.deadlocks[0].clone())
            })
            .collect::<Result<_, TestCaseError>>()?;
        for (i, a) in sigs.iter().enumerate() {
            for b in &sigs[i + 1..] {
                prop_assert!(a.same_bug(b));
                let m = a.merge(b, 0).expect("same bug merges");
                prop_assert_eq!(m.min_outer_depth(), shared + 2);
            }
        }
    }

    /// Generated valid signatures always pass validation and always
    /// collapse to at most one history entry per bug.
    #[test]
    fn valid_sigs_collapse_per_bug(n in 1usize..40, seed in any::<u64>()) {
        let profile = communix_workloads::JBOSS.scaled(0.03);
        let program = profile.generate();
        let lowered = LoweredProgram::lower(&program);
        let report = NestingAnalyzer::new(&lowered).analyze();
        let bugs = report.nested().len() / 2;
        prop_assume!(bugs >= 1);
        let mut gen = SigGen::new(seed);
        let sigs = gen.valid_remote_sigs(&program, &report, n);
        let mut history = History::new();
        for s in sigs {
            history.add_generalizing(s, 5);
        }
        prop_assert!(history.len() <= bugs.min(n));
        for sig in history.signatures() {
            prop_assert!(sig.min_outer_depth() >= 5);
        }
    }

    /// Random signatures stay within the paper's size band and are
    /// pairwise non-adjacent (so server benchmarks measure processing,
    /// not accidental rejections).
    #[test]
    fn random_sig_batch_properties(seed in any::<u64>(), n in 2usize..12) {
        let mut gen = SigGen::new(seed);
        let batch = gen.random_batch(n);
        for (i, a) in batch.iter().enumerate() {
            let size = a.size_bytes();
            prop_assert!((1_000..3_000).contains(&size), "size {}", size);
            for b in &batch[i + 1..] {
                prop_assert!(a != b);
                prop_assert!(!a.adjacent_to(b));
            }
        }
    }
}
