//! Deadlock-prone synthetic applications.
//!
//! Three shapes cover everything the evaluation needs:
//!
//! * [`DeadlockApp`] — the canonical two-lock inversion (thread 1 takes
//!   A then B, thread 2 takes B then A), with a configurable call-chain
//!   depth so the extracted signatures have realistic outer stacks
//!   (the agent requires depth ≥ 5 for remote signatures);
//! * [`MultiBugApp`] — `n` independent two-lock inversions, modelling the
//!   paper's Eclipse-plugin scenario ("if the plugin has multiple deadlock
//!   bugs, each user has to encounter all these deadlocks");
//! * [`ManifestationApp`] — one deadlock bug reachable through `m`
//!   distinct caller chains, producing `m` different signatures of the
//!   same bug (the generalization workload of §III-D).
//!
//! Every app exposes the [`ThreadSpec`]s that deterministically drive the
//! simulator into the deadlock interleaving (and, once a signature is in
//! the history, into the avoidance path instead).

use communix_bytecode::{
    ClassBuilder, LockExpr, LoweredProgram, Program, ProgramBuilder, StmtSink,
};
use communix_runtime::ThreadSpec;

/// Work ticks inside the outer critical section before the inner
/// acquisition — long enough that both threads hold their first lock
/// before either requests its second.
const HOLD_TICKS: u32 = 5;

/// Appends the call chain `entry -> {entry}_link0 -> … -> leaf` to `cb`,
/// all in the same class. `depth` is the number of *links* between entry
/// and leaf (0 ⇒ entry calls leaf directly); `leaf_body` fills the leaf.
fn chain<'p>(
    mut cb: ClassBuilder<'p>,
    class: &str,
    entry: &str,
    leaf: &str,
    depth: usize,
    leaf_body: impl FnOnce(&mut StmtSink<'_>),
) -> ClassBuilder<'p> {
    let link_name = |i: usize| format!("{entry}_link{i}");
    let first_callee = if depth == 0 {
        leaf.to_string()
    } else {
        link_name(0)
    };
    cb = cb.plain_method(entry, |s| {
        s.call(class, &first_callee);
    });
    for i in 0..depth {
        let callee = if i + 1 == depth {
            leaf.to_string()
        } else {
            link_name(i + 1)
        };
        cb = cb.plain_method(&link_name(i), |s| {
            s.call(class, &callee);
        });
    }
    cb.plain_method(leaf, leaf_body)
}

/// Fills a leaf with `sync(first) { work; sync(second) { work } }`.
fn inversion_leaf(first: String, second: String) -> impl FnOnce(&mut StmtSink<'_>) {
    move |s| {
        s.sync(LockExpr::global(first), |s| {
            s.work(HOLD_TICKS).sync(LockExpr::global(second), |s| {
                s.work(1);
            });
        });
    }
}

/// The canonical two-lock inversion application.
///
/// Two entry points, [`DeadlockApp::first`] and [`DeadlockApp::second`],
/// acquire the same two locks in opposite orders. Run unprotected, the
/// pair deadlocks; run with the deadlock's signature in the history,
/// Dimmunix serializes them.
///
/// # Example
///
/// ```
/// use communix_runtime::{SimConfig, Simulator};
/// use communix_dimmunix::DimmunixConfig;
/// use communix_workloads::DeadlockApp;
///
/// let app = DeadlockApp::new(4);
/// let mut sim = Simulator::new(app.lowered(), DimmunixConfig::default(), SimConfig::default());
/// let outcome = sim.run(&app.deadlock_specs());
/// assert_eq!(outcome.deadlocks.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct DeadlockApp {
    program: Program,
    chain_depth: usize,
}

impl DeadlockApp {
    /// The class holding all of the app's code.
    pub const CLASS: &'static str = "app.inversion.Worker";

    /// Creates the app with call chains of `chain_depth` links between
    /// the entry points and the locking methods. The outer call stacks of
    /// the resulting deadlock signatures have depth `chain_depth + 2`
    /// (entry frame, link frames, sync site) — pass ≥ 3 to clear the
    /// agent's depth-5 rule.
    pub fn new(chain_depth: usize) -> Self {
        let mut b = ProgramBuilder::new();
        let cb = b.class(Self::CLASS);
        let cb = chain(
            cb,
            Self::CLASS,
            "first",
            "lockAB",
            chain_depth,
            inversion_leaf("app.inversion.A".into(), "app.inversion.B".into()),
        );
        let cb = chain(
            cb,
            Self::CLASS,
            "second",
            "lockBA",
            chain_depth,
            inversion_leaf("app.inversion.B".into(), "app.inversion.A".into()),
        );
        cb.done();
        DeadlockApp {
            program: b.build(),
            chain_depth,
        }
    }

    /// The program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The lowered program (convenience for building simulators).
    pub fn lowered(&self) -> LoweredProgram {
        LoweredProgram::lower(&self.program)
    }

    /// The configured chain depth.
    pub fn chain_depth(&self) -> usize {
        self.chain_depth
    }

    /// A spec running the A-then-B entry.
    pub fn first(&self, instance: u64) -> ThreadSpec {
        ThreadSpec::new(Self::CLASS, "first", instance)
    }

    /// A spec running the B-then-A entry.
    pub fn second(&self, instance: u64) -> ThreadSpec {
        ThreadSpec::new(Self::CLASS, "second", instance)
    }

    /// The two-thread workload that deadlocks when unprotected.
    pub fn deadlock_specs(&self) -> Vec<ThreadSpec> {
        vec![self.first(1), self.second(2)]
    }
}

/// An application with `n` independent deadlock bugs.
///
/// Bug `i` inverts locks `A{i}`/`B{i}`; its entries are
/// [`MultiBugApp::first`]`(i)` and [`MultiBugApp::second`]`(i)`. Each bug
/// produces a distinct signature, so full protection requires all `n`
/// signatures — the scenario Communix accelerates by pooling discoveries
/// across users.
#[derive(Debug, Clone)]
pub struct MultiBugApp {
    program: Program,
    bugs: usize,
    chain_depth: usize,
}

impl MultiBugApp {
    /// Class prefix; bug `i` lives in `app.plugin.Feature{i}`.
    pub const CLASS_PREFIX: &'static str = "app.plugin.Feature";

    /// Creates an app with `bugs` independent inversions, each behind a
    /// `chain_depth`-link call chain.
    pub fn new(bugs: usize, chain_depth: usize) -> Self {
        let mut b = ProgramBuilder::new();
        for i in 0..bugs {
            let class = format!("{}{i}", Self::CLASS_PREFIX);
            let lock_a = format!("app.plugin.A{i}");
            let lock_b = format!("app.plugin.B{i}");
            let cb = b.class(&class);
            let cb = chain(
                cb,
                &class,
                "first",
                "lockAB",
                chain_depth,
                inversion_leaf(lock_a.clone(), lock_b.clone()),
            );
            let cb = chain(
                cb,
                &class,
                "second",
                "lockBA",
                chain_depth,
                inversion_leaf(lock_b, lock_a),
            );
            cb.done();
        }
        MultiBugApp {
            program: b.build(),
            bugs,
            chain_depth,
        }
    }

    /// The program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The lowered program.
    pub fn lowered(&self) -> LoweredProgram {
        LoweredProgram::lower(&self.program)
    }

    /// Number of independent bugs.
    pub fn bugs(&self) -> usize {
        self.bugs
    }

    /// The configured chain depth.
    pub fn chain_depth(&self) -> usize {
        self.chain_depth
    }

    /// The A-then-B entry of bug `bug`.
    pub fn first(&self, bug: usize, instance: u64) -> ThreadSpec {
        ThreadSpec::new(&format!("{}{bug}", Self::CLASS_PREFIX), "first", instance)
    }

    /// The B-then-A entry of bug `bug`.
    pub fn second(&self, bug: usize, instance: u64) -> ThreadSpec {
        ThreadSpec::new(&format!("{}{bug}", Self::CLASS_PREFIX), "second", instance)
    }

    /// The two-thread workload triggering bug `bug`.
    pub fn deadlock_specs(&self, bug: usize) -> Vec<ThreadSpec> {
        vec![self.first(bug, 1), self.second(bug, 2)]
    }
}

/// One deadlock bug reachable through `m` distinct caller chains.
///
/// Every path `k` enters the same inversion through its own entry
/// `path{k}`, then a *shared* chain of `shared_depth` links. Each path
/// therefore yields a different signature of the same bug; their
/// generalization (§III-D) is the shared suffix, of outer depth
/// `shared_depth + 2`.
#[derive(Debug, Clone)]
pub struct ManifestationApp {
    program: Program,
    paths: usize,
    shared_depth: usize,
}

impl ManifestationApp {
    /// The class holding the shared chain and the inversion.
    pub const CLASS: &'static str = "app.multipath.Service";

    /// The class holding the per-path entries.
    pub const PATHS_CLASS: &'static str = "app.multipath.Paths";

    /// Creates an app with `paths` caller chains converging on a shared
    /// chain of `shared_depth` links before the inversion. Pass
    /// `shared_depth ≥ 3` so the generalized signature keeps outer depth
    /// ≥ 5 and remote merges stay legal.
    ///
    /// # Panics
    ///
    /// Panics if `paths` is zero.
    pub fn new(paths: usize, shared_depth: usize) -> Self {
        assert!(paths >= 1, "need at least one path");
        let mut b = ProgramBuilder::new();
        // The shared tail and the opposite-order thread, in one class.
        let cb = b.class(Self::CLASS);
        let cb = chain(
            cb,
            Self::CLASS,
            "sharedEntry",
            "lockAB",
            shared_depth,
            inversion_leaf("app.multipath.A".into(), "app.multipath.B".into()),
        );
        let cb = chain(
            cb,
            Self::CLASS,
            "opposite",
            "lockBA",
            shared_depth,
            inversion_leaf("app.multipath.B".into(), "app.multipath.A".into()),
        );
        cb.done();
        // Per-path entries calling the shared tail.
        {
            let mut cb = b.class(Self::PATHS_CLASS);
            for k in 0..paths {
                cb = cb.plain_method(&format!("path{k}"), |s| {
                    s.work(1).call(Self::CLASS, "sharedEntry");
                });
            }
            cb.done();
        }
        ManifestationApp {
            program: b.build(),
            paths,
            shared_depth,
        }
    }

    /// The program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The lowered program.
    pub fn lowered(&self) -> LoweredProgram {
        LoweredProgram::lower(&self.program)
    }

    /// Number of distinct caller chains to the bug.
    pub fn paths(&self) -> usize {
        self.paths
    }

    /// Depth of the shared chain (links).
    pub fn shared_depth(&self) -> usize {
        self.shared_depth
    }

    /// A spec entering the inversion through path `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn via_path(&self, k: usize, instance: u64) -> ThreadSpec {
        assert!(k < self.paths, "path {k} out of range");
        ThreadSpec::new(Self::PATHS_CLASS, &format!("path{k}"), instance)
    }

    /// The opposite-order thread.
    pub fn opposite(&self, instance: u64) -> ThreadSpec {
        ThreadSpec::new(Self::CLASS, "opposite", instance)
    }

    /// The two-thread workload triggering manifestation `k`.
    pub fn deadlock_specs(&self, k: usize) -> Vec<ThreadSpec> {
        vec![self.via_path(k, 1), self.opposite(2)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use communix_dimmunix::{DimmunixConfig, History, SigOrigin};
    use communix_runtime::{SimConfig, Simulator};

    fn sim_for(app: &DeadlockApp) -> Simulator {
        Simulator::new(
            app.lowered(),
            DimmunixConfig::default(),
            SimConfig::default(),
        )
    }

    #[test]
    fn two_lock_app_deadlocks_unprotected() {
        let app = DeadlockApp::new(3);
        let mut sim = sim_for(&app);
        let outcome = sim.run(&app.deadlock_specs());
        assert_eq!(outcome.deadlocks.len(), 1);
        assert_eq!(outcome.victim_count(), 1);
        assert_eq!(sim.history().len(), 1);
    }

    #[test]
    fn signature_depth_tracks_chain_depth() {
        for depth in [0usize, 3, 6] {
            let app = DeadlockApp::new(depth);
            let mut sim = sim_for(&app);
            let outcome = sim.run(&app.deadlock_specs());
            let sig = &outcome.deadlocks[0];
            assert_eq!(
                sig.min_outer_depth(),
                depth + 2,
                "chain depth {depth} should give outer depth {}",
                depth + 2
            );
        }
    }

    #[test]
    fn second_run_avoids_the_deadlock() {
        let app = DeadlockApp::new(3);
        let mut sim = sim_for(&app);
        let first = sim.run(&app.deadlock_specs());
        assert_eq!(first.deadlocks.len(), 1);
        // Same simulator: history persists across runs, like restarting a
        // Dimmunix-protected application.
        let second = sim.run(&app.deadlock_specs());
        assert!(second.deadlocks.is_empty(), "avoidance must kick in");
        assert!(second.all_finished());
        assert!(second.stats.suspensions > 0, "threads were serialized");
    }

    #[test]
    fn remote_signature_protects_fresh_node() {
        // The Communix value proposition: a node that never deadlocked is
        // protected by someone else's signature.
        let app = DeadlockApp::new(3);
        let sig = {
            let mut sim = sim_for(&app);
            sim.run(&app.deadlock_specs()).deadlocks[0]
                .clone()
                .with_origin(SigOrigin::Remote)
        };
        let mut history = History::new();
        history.add(sig);
        let mut fresh = Simulator::with_history(
            app.lowered(),
            DimmunixConfig::default(),
            SimConfig::default(),
            history,
        );
        let outcome = fresh.run(&app.deadlock_specs());
        assert!(outcome.deadlocks.is_empty());
        assert!(outcome.all_finished());
    }

    #[test]
    fn multi_bug_app_has_independent_bugs() {
        let app = MultiBugApp::new(3, 3);
        let mut sim = Simulator::new(
            app.lowered(),
            DimmunixConfig::default(),
            SimConfig::default(),
        );
        // Trigger bugs 0 and 2; bug 1 untouched.
        let o0 = sim.run(&app.deadlock_specs(0));
        assert_eq!(o0.deadlocks.len(), 1);
        let o2 = sim.run(&app.deadlock_specs(2));
        assert_eq!(o2.deadlocks.len(), 1);
        assert_eq!(sim.history().len(), 2);
        // The two signatures denote different bugs.
        let sigs = sim.history().signatures();
        assert!(!sigs[0].same_bug(&sigs[1]));
        // Bug 1 still deadlocks: its signature is not in the history.
        let o1 = sim.run(&app.deadlock_specs(1));
        assert_eq!(o1.deadlocks.len(), 1);
    }

    #[test]
    fn manifestations_are_same_bug_different_stacks() {
        let app = ManifestationApp::new(3, 3);
        let mut sim = Simulator::new(
            app.lowered(),
            // Detection only: let every manifestation actually deadlock.
            DimmunixConfig::detection_only(),
            SimConfig::default(),
        );
        let mut sigs = Vec::new();
        for k in 0..3 {
            let o = sim.run(&app.deadlock_specs(k));
            assert_eq!(o.deadlocks.len(), 1, "path {k} must deadlock");
            sigs.push(o.deadlocks[0].clone());
        }
        assert!(sigs[0].same_bug(&sigs[1]));
        assert!(sigs[1].same_bug(&sigs[2]));
        assert_ne!(sigs[0].entries(), sigs[1].entries(), "stacks differ");
        // Their pairwise merge is the shared suffix: depth shared_depth+2.
        let merged = sigs[0].merge(&sigs[1], 0).expect("same bug merges");
        assert_eq!(merged.min_outer_depth(), 3 + 2);
    }

    #[test]
    fn generalized_signature_covers_unseen_manifestation() {
        let app = ManifestationApp::new(3, 3);
        // Learn manifestations 0 and 1, generalize, then face path 2.
        let mut sim = Simulator::new(
            app.lowered(),
            DimmunixConfig::detection_only(),
            SimConfig::default(),
        );
        let s0 = sim.run(&app.deadlock_specs(0)).deadlocks[0].clone();
        let s1 = sim.run(&app.deadlock_specs(1)).deadlocks[0].clone();
        let merged = s0.merge(&s1, 0).expect("merge");
        let mut history = History::new();
        history.add(merged);
        let mut protected = Simulator::with_history(
            app.lowered(),
            DimmunixConfig::default(),
            SimConfig::default(),
            history,
        );
        let o = protected.run(&app.deadlock_specs(2));
        assert!(
            o.deadlocks.is_empty(),
            "generalized signature must cover the unseen path"
        );
        assert!(o.all_finished());
    }

    #[test]
    fn ungeneralized_signature_misses_other_manifestation() {
        // The motivation for §III-D: a single manifestation's signature
        // (deep outer stacks) does NOT protect against a different path.
        let app = ManifestationApp::new(2, 3);
        let mut sim = Simulator::new(
            app.lowered(),
            DimmunixConfig::detection_only(),
            SimConfig::default(),
        );
        let s0 = sim.run(&app.deadlock_specs(0)).deadlocks[0].clone();
        let mut history = History::new();
        history.add(s0);
        let mut protected = Simulator::with_history(
            app.lowered(),
            DimmunixConfig::default(),
            SimConfig::default(),
            history,
        );
        let o = protected.run(&app.deadlock_specs(1));
        assert_eq!(
            o.deadlocks.len(),
            1,
            "path-0 signature must not match path 1 (false negative)"
        );
    }

    #[test]
    #[should_panic(expected = "at least one path")]
    fn manifestation_app_requires_paths() {
        let _ = ManifestationApp::new(0, 3);
    }

    #[test]
    fn chain_depth_zero_is_direct_call() {
        let app = DeadlockApp::new(0);
        let mut sim = sim_for(&app);
        let o = sim.run(&app.deadlock_specs());
        assert_eq!(o.deadlocks.len(), 1);
        assert_eq!(o.deadlocks[0].min_outer_depth(), 2);
    }

    #[test]
    fn apps_expose_consistent_programs() {
        let app = MultiBugApp::new(2, 1);
        assert_eq!(app.program().len(), 2);
        assert_eq!(app.bugs(), 2);
        assert_eq!(app.chain_depth(), 1);
        let m = ManifestationApp::new(2, 1);
        assert_eq!(m.paths(), 2);
        assert_eq!(m.shared_depth(), 1);
        assert!(m.program().class(ManifestationApp::PATHS_CLASS).is_some());
    }
}
