//! Table II workload drivers.
//!
//! The paper measures the worst-case DoS overhead on five application /
//! benchmark pairs (RUBiS on JBoss, JDBCBench on MySQL-JDBC, Eclipse
//! start/stop, a Limewire upload test, Vuze start/stop). What determines
//! the overhead is not application semantics but the *lock topology* of
//! the workload: how much of the critical path runs inside nested
//! synchronized sections, how many worker threads overlap them, and
//! through how many distinct call paths the sections are reached.
//!
//! [`DriverProfile`] captures exactly those parameters; [`DriverApp`]
//! realizes a profile as a runnable program:
//!
//! * `sections` nested critical sections, each with two call paths — a
//!   five-deep *service* path (`svc → ctrl → biz → dao → sect`) that the
//!   depth-5 attack signatures cover, and a shallower *alt* path that
//!   only depth-1 signatures can match;
//! * `workers` phase-shifted worker threads cycling through the sections
//!   (each starts at a different section, so an unattacked run has almost
//!   no lock contention — the paper's parallel critical path);
//! * `cold_sections` extra nested sections never executed, the target of
//!   the off-critical-path control (paper: < 2% overhead).

use communix_bytecode::{
    ClassName, LockExpr, LoweredProgram, Program, ProgramBuilder, Stmt, SyncSite,
};
use communix_dimmunix::{CallStack, DimmunixConfig, Frame, History};
use communix_runtime::{SimConfig, SimOutcome, Simulator, ThreadSpec};

/// One Table II workload: an application profile plus its benchmark's
/// lock-topology parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriverProfile {
    /// Application name (Table II column 1).
    pub app: &'static str,
    /// Benchmark / test name (Table II column 2).
    pub benchmark: &'static str,
    /// Concurrent worker threads.
    pub workers: usize,
    /// Section-cycle iterations per worker.
    pub iterations: u32,
    /// Hot nested sections on the critical path.
    pub sections: usize,
    /// Cold nested sections (never executed).
    pub cold_sections: usize,
    /// Work ticks inside the outer lock, before the inner acquisition.
    pub section_work: u32,
    /// Work ticks inside the inner lock.
    pub inner_work: u32,
    /// Work ticks between sections (outside any lock).
    pub outside_work: u32,
    /// The worst-case overhead Table II reports for this row (percent).
    pub paper_overhead_pct: u32,
}

/// RUBiS on JBoss: request processing dominated by nested locking.
pub const RUBIS_JBOSS: DriverProfile = DriverProfile {
    app: "JBoss",
    benchmark: "RUBiS",
    workers: 8,
    iterations: 40,
    sections: 6,
    cold_sections: 2,
    section_work: 4,
    inner_work: 2,
    outside_work: 3,
    paper_overhead_pct: 40,
};

/// JDBCBench on the MySQL JDBC driver: transaction loop, heavy locking.
pub const JDBCBENCH_MYSQL: DriverProfile = DriverProfile {
    app: "MySQL JDBC",
    benchmark: "JDBCBench",
    workers: 8,
    iterations: 40,
    sections: 5,
    cold_sections: 2,
    section_work: 4,
    inner_work: 2,
    outside_work: 5,
    paper_overhead_pct: 38,
};

/// Eclipse start-up + shutdown: moderately lock-bound initialization.
pub const ECLIPSE_STARTUP: DriverProfile = DriverProfile {
    app: "Eclipse",
    benchmark: "Startup + Shutdown",
    workers: 6,
    iterations: 30,
    sections: 5,
    cold_sections: 2,
    section_work: 4,
    inner_work: 2,
    outside_work: 3,
    paper_overhead_pct: 33,
};

/// Limewire upload test: mostly I/O-shaped work outside locks.
pub const LIMEWIRE_UPLOAD: DriverProfile = DriverProfile {
    app: "Limewire",
    benchmark: "Upload test",
    workers: 6,
    iterations: 30,
    sections: 4,
    cold_sections: 2,
    section_work: 3,
    inner_work: 1,
    outside_work: 8,
    paper_overhead_pct: 10,
};

/// Vuze start-up + shutdown: lightly lock-bound.
pub const VUZE_STARTUP: DriverProfile = DriverProfile {
    app: "Vuze",
    benchmark: "Startup + Shutdown",
    workers: 6,
    iterations: 30,
    sections: 4,
    cold_sections: 2,
    section_work: 3,
    inner_work: 1,
    outside_work: 10,
    paper_overhead_pct: 8,
};

/// All Table II rows, in paper order.
pub const ALL_DRIVERS: [DriverProfile; 5] = [
    RUBIS_JBOSS,
    JDBCBENCH_MYSQL,
    ECLIPSE_STARTUP,
    LIMEWIRE_UPLOAD,
    VUZE_STARTUP,
];

/// Metadata about one nested critical section of a driver app — enough
/// for the attacker to build signatures that match its runtime stacks
/// exactly (see [`crate::attacker`]).
#[derive(Debug, Clone)]
pub struct Section {
    /// Section index (cold sections continue the numbering).
    pub index: usize,
    /// Declaring class.
    pub class: ClassName,
    /// The outer `synchronized` site (a *nested* site).
    pub outer_site: SyncSite,
    /// The inner `synchronized` site.
    pub inner_site: SyncSite,
    /// Outer lock name.
    pub outer_lock: String,
    /// Inner lock name.
    pub inner_lock: String,
    /// The depth-5 call-stack suffix of the service path at the outer
    /// site: `[svc, ctrl, biz, dao, sect]`.
    pub critical_stack: CallStack,
    /// The depth-1 stack: just the outer lock statement.
    pub top_only_stack: CallStack,
    /// The runtime stack suffix at the *inner* site (depth 1).
    pub inner_stack: CallStack,
    /// Whether this is a cold (never-executed) section.
    pub cold: bool,
}

/// A realized Table II workload.
#[derive(Debug, Clone)]
pub struct DriverApp {
    profile: DriverProfile,
    program: Program,
    sections: Vec<Section>,
}

const WORKER_CLASS: &str = "drv.app.Worker";

fn section_class(index: usize) -> String {
    format!("drv.app.Sect{index}")
}

impl DriverApp {
    /// Builds the program realizing `profile`.
    pub fn build(profile: &DriverProfile) -> Self {
        let mut b = ProgramBuilder::new();
        let total_sections = profile.sections + profile.cold_sections;

        for i in 0..total_sections {
            let class = section_class(i);
            let outer_lock = format!("drv.L{i}o");
            let inner_lock = format!("drv.L{i}i");
            let (ol, il) = (outer_lock.clone(), inner_lock.clone());
            let section_work = profile.section_work;
            let inner_work = profile.inner_work;
            b.class(&class)
                .plain_method("svc", |s| {
                    s.call(&class, "ctrl");
                })
                .plain_method("ctrl", |s| {
                    s.call(&class, "biz");
                })
                .plain_method("biz", |s| {
                    s.call(&class, "dao");
                })
                .plain_method("dao", |s| {
                    s.call(&class, "sect");
                })
                .plain_method("sect", move |s| {
                    s.sync(LockExpr::global(ol), |s| {
                        s.work(section_work).sync(LockExpr::global(il), |s| {
                            s.work(inner_work);
                        });
                    });
                })
                .plain_method("alt", |s| {
                    s.call(&class, "dao");
                })
                .done();
        }

        // Phase-shifted workers: worker w starts its section cycle at
        // section (w mod sections), so an unattacked run overlaps
        // *different* sections and sees almost no contention.
        {
            let mut cb = b.class(WORKER_CLASS);
            for w in 0..profile.workers {
                let hot = profile.sections;
                let iterations = profile.iterations;
                let outside = profile.outside_work;
                cb = cb.plain_method(&format!("run{w}"), move |s| {
                    // Per-worker phase offset: workers start spread out.
                    s.work(w as u32);
                    s.repeat(iterations, |s| {
                        for step in 0..hot {
                            let idx = (w + step) % hot;
                            let class = section_class(idx);
                            // Half the visits use the deep service path,
                            // half the shallow alt path: depth-5
                            // signatures only cover the former.
                            s.branch(
                                |t| {
                                    t.call(&class, "svc");
                                },
                                |e| {
                                    e.call(&class, "alt");
                                },
                            );
                            // Randomly jittered think time: the workers'
                            // relative phases random-walk, so section
                            // overlaps are ergodic rather than all-or-
                            // nothing lockstep (real request mixes drift
                            // the same way).
                            let lo = outside.saturating_sub(2);
                            let hi = outside + 2;
                            s.branch(
                                |t| {
                                    t.work(lo);
                                },
                                |e| {
                                    e.work(hi);
                                },
                            );
                        }
                    });
                });
            }
            cb.done();
        }

        let program = b.build();
        let sections = (0..total_sections)
            .map(|i| extract_section(&program, i, i >= profile.sections))
            .collect();
        DriverApp {
            profile: *profile,
            program,
            sections,
        }
    }

    /// The profile this app realizes.
    pub fn profile(&self) -> &DriverProfile {
        &self.profile
    }

    /// The program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The lowered program.
    pub fn lowered(&self) -> LoweredProgram {
        LoweredProgram::lower(&self.program)
    }

    /// All sections (hot first, then cold).
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// The hot (critical-path) sections.
    pub fn hot_sections(&self) -> Vec<&Section> {
        self.sections.iter().filter(|s| !s.cold).collect()
    }

    /// The cold (never-executed) sections.
    pub fn cold_sections(&self) -> Vec<&Section> {
        self.sections.iter().filter(|s| s.cold).collect()
    }

    /// The worker thread specs.
    pub fn specs(&self) -> Vec<ThreadSpec> {
        (0..self.profile.workers)
            .map(|w| ThreadSpec::new(WORKER_CLASS, &format!("run{w}"), w as u64 + 1))
            .collect()
    }

    /// Runs the workload once on a fresh simulator seeded with `history`,
    /// with avoidance on or off.
    pub fn run(&self, history: History, avoidance: bool) -> SimOutcome {
        let dimmunix = DimmunixConfig {
            avoidance,
            ..DimmunixConfig::default()
        };
        let mut sim =
            Simulator::with_history(self.lowered(), dimmunix, SimConfig::default(), history);
        sim.run(&self.specs())
    }

    /// Runs the vanilla baseline (no Dimmunix interference).
    pub fn run_vanilla(&self) -> SimOutcome {
        let mut sim = Simulator::new(
            self.lowered(),
            DimmunixConfig::vanilla(),
            SimConfig::default(),
        );
        sim.run(&self.specs())
    }

    /// Completion-time overhead of running with `history` (avoidance on)
    /// relative to the vanilla baseline, as a fraction (0.40 = 40%).
    pub fn overhead_vs_vanilla(&self, history: History) -> f64 {
        let vanilla = self.run_vanilla();
        let attacked = self.run(history, true);
        let v = vanilla.virtual_time.as_secs_f64();
        let a = attacked.virtual_time.as_secs_f64();
        (a - v) / v
    }
}

/// Finds the line of the first `Call` statement in `method`'s body.
fn first_call_line(program: &Program, class: &str, method: &str) -> u32 {
    let m = program
        .class(class)
        .and_then(|c| c.method(method))
        .unwrap_or_else(|| panic!("driver method {class}.{method} missing"));
    let mut line = None;
    for s in &m.body {
        s.visit(&mut |st| {
            if line.is_none() {
                if let Stmt::Call { line: l, .. } = st {
                    line = Some(*l);
                }
            }
        });
    }
    line.unwrap_or_else(|| panic!("{class}.{method} has no call statement"))
}

/// Finds the outer and inner sync lines of the `sect` method.
fn sync_lines(program: &Program, class: &str) -> (u32, u32) {
    let m = program
        .class(class)
        .and_then(|c| c.method("sect"))
        .unwrap_or_else(|| panic!("driver method {class}.sect missing"));
    let mut lines = Vec::new();
    for s in &m.body {
        s.visit(&mut |st| {
            if let Stmt::Sync { line, .. } = st {
                lines.push(*line);
            }
        });
    }
    assert_eq!(lines.len(), 2, "sect must have exactly two sync blocks");
    (lines[0], lines[1])
}

/// Builds the [`Section`] metadata for section `index` by reading the
/// built program's AST (so line numbers always match what the simulator
/// will produce).
fn extract_section(program: &Program, index: usize, cold: bool) -> Section {
    let class = section_class(index);
    let (outer_line, inner_line) = sync_lines(program, &class);
    let critical_stack: CallStack = vec![
        Frame::new(&class, "svc", first_call_line(program, &class, "svc")),
        Frame::new(&class, "ctrl", first_call_line(program, &class, "ctrl")),
        Frame::new(&class, "biz", first_call_line(program, &class, "biz")),
        Frame::new(&class, "dao", first_call_line(program, &class, "dao")),
        Frame::new(&class, "sect", outer_line),
    ]
    .into_iter()
    .collect();
    let top_only_stack: CallStack = vec![Frame::new(&class, "sect", outer_line)]
        .into_iter()
        .collect();
    let inner_stack: CallStack = vec![Frame::new(&class, "sect", inner_line)]
        .into_iter()
        .collect();
    Section {
        index,
        class: ClassName::new(class.clone()),
        outer_site: SyncSite::new(class.clone(), "sect", outer_line),
        inner_site: SyncSite::new(class, "sect", inner_line),
        outer_lock: format!("drv.L{index}o"),
        inner_lock: format!("drv.L{index}i"),
        critical_stack,
        top_only_stack,
        inner_stack,
        cold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use communix_analysis::NestingAnalyzer;

    /// A small profile for fast tests.
    fn tiny() -> DriverProfile {
        DriverProfile {
            app: "Tiny",
            benchmark: "unit",
            workers: 4,
            iterations: 5,
            sections: 3,
            cold_sections: 1,
            section_work: 2,
            inner_work: 1,
            outside_work: 3,
            paper_overhead_pct: 0,
        }
    }

    #[test]
    fn build_produces_expected_sections() {
        let app = DriverApp::build(&tiny());
        assert_eq!(app.sections().len(), 4);
        assert_eq!(app.hot_sections().len(), 3);
        assert_eq!(app.cold_sections().len(), 1);
        for s in app.sections() {
            assert_eq!(s.critical_stack.depth(), 5);
            assert_eq!(s.top_only_stack.depth(), 1);
            assert_eq!(s.critical_stack.top().unwrap().site.line, s.outer_site.line);
            assert_ne!(s.outer_site, s.inner_site);
        }
    }

    #[test]
    fn outer_sites_are_nested_per_analysis() {
        // The attacker's signatures must end in nested sites to pass the
        // agent's validation; check the driver app's outer sites classify
        // as nested.
        let app = DriverApp::build(&tiny());
        let lowered = app.lowered();
        let report = NestingAnalyzer::new(&lowered).analyze();
        for s in app.sections() {
            assert!(
                report.is_nested(&s.outer_site),
                "outer site of section {} must be nested",
                s.index
            );
            assert!(!report.is_nested(&s.inner_site));
        }
    }

    #[test]
    fn vanilla_run_completes_without_deadlock() {
        let app = DriverApp::build(&tiny());
        let o = app.run_vanilla();
        assert!(o.all_finished());
        assert_eq!(o.deadlocks.len(), 0);
        assert!(o.virtual_time > communix_clock::Duration::ZERO);
    }

    #[test]
    fn unattacked_dimmunix_run_matches_vanilla() {
        // Empty history: avoidance never fires, completion time within
        // rounding of vanilla.
        let app = DriverApp::build(&tiny());
        let overhead = app.overhead_vs_vanilla(History::new());
        assert!(
            overhead.abs() < 0.02,
            "empty-history overhead should be < 2%, got {overhead}"
        );
    }

    #[test]
    fn vanilla_time_is_deterministic() {
        let app = DriverApp::build(&tiny());
        let a = app.run_vanilla().virtual_time;
        let b = app.run_vanilla().virtual_time;
        assert_eq!(a, b);
    }

    #[test]
    fn critical_stack_matches_runtime_stack() {
        // Seed a pair signature over sections 0 and 1 and check the
        // simulator actually produces suspensions — i.e. the extracted
        // stacks really are suffixes of the runtime stacks.
        use communix_dimmunix::{SigEntry, Signature};
        let app = DriverApp::build(&tiny());
        let s0 = &app.sections()[0];
        let s1 = &app.sections()[1];
        let sig = Signature::remote(vec![
            SigEntry::new(s0.critical_stack.clone(), s0.inner_stack.clone()),
            SigEntry::new(s1.critical_stack.clone(), s1.inner_stack.clone()),
        ]);
        let mut history = History::new();
        history.add(sig);
        let o = app.run(history, true);
        assert!(o.all_finished());
        assert!(
            o.stats.suspensions > 0,
            "pair signature must cause avoidance suspensions"
        );
    }

    #[test]
    fn all_profiles_are_well_formed() {
        for p in ALL_DRIVERS {
            assert!(p.workers >= 2, "{}", p.app);
            assert!(p.sections >= 2, "{}", p.app);
            assert!(p.cold_sections >= 1, "{}", p.app);
            assert!(p.paper_overhead_pct > 0, "{}", p.app);
        }
    }

    #[test]
    fn specs_name_existing_methods() {
        let app = DriverApp::build(&tiny());
        let specs = app.specs();
        assert_eq!(specs.len(), 4);
        for spec in &specs {
            assert!(
                app.program().resolve(&spec.entry).is_some(),
                "{:?} missing",
                spec.entry
            );
        }
    }
}
