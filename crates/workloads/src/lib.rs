//! Synthetic applications, workload drivers, attacker models and the
//! protection-time model — everything the evaluation (§IV) runs on.
//!
//! The paper evaluates Communix on real Java applications (JBoss,
//! Limewire, Vuze, Eclipse, MySQL-JDBC) driven by standard benchmarks
//! (RUBiS, JDBCBench, upload tests). Every Communix mechanism observes an
//! application only through its lock behaviour, its class hashes, and its
//! CFG — so profile-driven synthetic programs that reproduce those
//! surfaces reproduce the workloads (see DESIGN.md §1 for the full
//! substitution argument).
//!
//! * [`profiles`] — Table I application profiles (JBoss/Limewire/Vuze)
//!   and the generator that realizes them as [`communix_bytecode`]
//!   programs;
//! * [`deadlock_apps`] — deadlock-prone applications: the canonical
//!   two-lock inversion, multi-bug applications, and multi-manifestation
//!   applications for generalization experiments;
//! * [`sig_gen`] — deterministic signature generators: random signatures
//!   for server load tests (Figure 2/3) and application-valid remote
//!   signatures for agent pipelines (Figure 4);
//! * [`attacker`] — the §IV-B attacker models: critical-path DoS
//!   signatures of configurable depth and server-flooding factories;
//! * [`drivers`] — the Table II workload drivers (request mix,
//!   transaction loop, upload loop, startup+shutdown) with per-application
//!   profiles;
//! * [`protection`] — the §IV-C time-to-full-protection model
//!   (Monte-Carlo plus the paper's closed forms).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacker;
pub mod deadlock_apps;
pub mod drivers;
pub mod profiles;
pub mod protection;
pub mod sig_gen;

pub use attacker::{AttackDepth, AttackPlan, AttackerFactory};
pub use deadlock_apps::{DeadlockApp, ManifestationApp, MultiBugApp};
pub use drivers::{
    DriverApp, DriverProfile, Section, ALL_DRIVERS, ECLIPSE_STARTUP, JDBCBENCH_MYSQL,
    LIMEWIRE_UPLOAD, RUBIS_JBOSS, VUZE_STARTUP,
};
pub use profiles::{AppProfile, ALL_PROFILES, JBOSS, LIMEWIRE, VUZE};
pub use protection::{EncounterModel, ProtectionParams, ProtectionReport};
pub use sig_gen::SigGen;
