//! Profile-driven synthetic applications matching Table I.
//!
//! The paper evaluates on JBoss, Limewire and Vuze, characterized by five
//! statistics: lines of code, synchronized blocks/methods, explicit
//! `ReentrantLock` operations, nested sync sites, and the subset of sites
//! the Soot analysis could classify (11–54%). Every Communix mechanism
//! observes only these statistics — never application semantics — so a
//! generator that reproduces them reproduces the workload.

use communix_bytecode::{LockExpr, Program, ProgramBuilder};

/// A Table I application profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppProfile {
    /// Application name as reported in Table I.
    pub name: &'static str,
    /// Lines of code.
    pub loc: usize,
    /// Synchronized blocks + methods.
    pub sync_sites: usize,
    /// Explicit `ReentrantLock.lock/unlock()` call sites.
    pub explicit_ops: usize,
    /// Nested sync sites found by the analysis.
    pub nested: usize,
    /// Sites the analysis could classify at all.
    pub analyzed: usize,
}

/// JBoss (Table I row 1).
pub const JBOSS: AppProfile = AppProfile {
    name: "JBoss",
    loc: 636_895,
    sync_sites: 1_898,
    explicit_ops: 104,
    nested: 249,
    analyzed: 844,
};

/// Limewire (Table I row 2).
pub const LIMEWIRE: AppProfile = AppProfile {
    name: "Limewire",
    loc: 595_623,
    sync_sites: 1_435,
    explicit_ops: 189,
    nested: 277,
    analyzed: 781,
};

/// Vuze (Table I row 3).
pub const VUZE: AppProfile = AppProfile {
    name: "Vuze",
    loc: 476_702,
    sync_sites: 3_653,
    explicit_ops: 14,
    nested: 120,
    analyzed: 432,
};

/// All Table I profiles.
pub const ALL_PROFILES: [AppProfile; 3] = [JBOSS, LIMEWIRE, VUZE];

impl AppProfile {
    /// Scales every statistic by `f` (for fast tests; benches use 1.0).
    pub fn scaled(&self, f: f64) -> AppProfile {
        let s = |v: usize| ((v as f64 * f).round() as usize).max(1);
        AppProfile {
            name: self.name,
            loc: s(self.loc),
            sync_sites: s(self.sync_sites),
            explicit_ops: (self.explicit_ops as f64 * f).round() as usize,
            nested: s(self.nested),
            analyzed: s(self.analyzed).min(s(self.sync_sites)),
        }
    }

    /// Generates a program realizing this profile.
    ///
    /// Site accounting: each *nested pattern* contributes one nested
    /// (outer) and one non-nested (inner) analyzable site; plain
    /// `synchronized { work }` blocks fill the remaining analyzable
    /// quota; the rest of the sites live in opaque methods (modelling the
    /// CFGs Soot could not retrieve).
    ///
    /// # Panics
    ///
    /// Panics if `analyzed < 2 * nested` or `sync_sites < analyzed`
    /// (impossible profiles).
    pub fn generate(&self) -> Program {
        assert!(
            self.analyzed >= 2 * self.nested,
            "profile must allow an inner site per nested site"
        );
        assert!(self.sync_sites >= self.analyzed);

        let nested_patterns = self.nested;
        let plain_analyzable = self.analyzed - 2 * self.nested;
        let opaque_sites = self.sync_sites - self.analyzed;

        let mut b = ProgramBuilder::new();
        let pkg = self.name.to_lowercase();

        // Nested patterns: sync(A_i) { work; sync(B_i) { work } }, one
        // method per pattern, grouped ~8 patterns per class.
        for (ci, chunk) in (0..nested_patterns)
            .collect::<Vec<_>>()
            .chunks(8)
            .enumerate()
        {
            let mut cb = b.class(&format!("{pkg}.nested.C{ci}"));
            for &i in chunk {
                cb = cb.plain_method(&format!("nested{i}"), |s| {
                    s.sync(LockExpr::global(format!("{pkg}.A{i}")), |s| {
                        s.work(2)
                            .sync(LockExpr::global(format!("{pkg}.B{i}")), |s| {
                                s.work(1);
                            });
                    });
                });
            }
            cb.done();
        }

        // Plain analyzable sites.
        for (ci, chunk) in (0..plain_analyzable)
            .collect::<Vec<_>>()
            .chunks(16)
            .enumerate()
        {
            let mut cb = b.class(&format!("{pkg}.plain.C{ci}"));
            for &i in chunk {
                cb = cb.plain_method(&format!("plain{i}"), |s| {
                    s.sync(LockExpr::global(format!("{pkg}.P{i}")), |s| {
                        s.work(1);
                    });
                });
            }
            cb.done();
        }

        // Opaque sites: sync blocks inside methods whose CFG the analyzer
        // cannot retrieve.
        for (ci, chunk) in (0..opaque_sites).collect::<Vec<_>>().chunks(16).enumerate() {
            let mut cb = b.class(&format!("{pkg}.opaque.C{ci}"));
            for &i in chunk {
                cb = cb.opaque_method(&format!("native{i}"), |s| {
                    s.sync(LockExpr::global(format!("{pkg}.O{i}")), |s| {
                        s.work(1);
                    });
                });
            }
            cb.done();
        }

        // Explicit ReentrantLock call sites (lock/unlock pairs; an odd
        // quota gets a trailing unpaired lock op).
        if self.explicit_ops > 0 {
            let pairs = self.explicit_ops / 2;
            let mut cb = b.class(&format!("{pkg}.explicit.C0"));
            for i in 0..pairs {
                cb = cb.plain_method(&format!("explicit{i}"), |s| {
                    s.explicit_lock(&format!("{pkg}.RL{i}"))
                        .work(1)
                        .explicit_unlock(&format!("{pkg}.RL{i}"));
                });
            }
            if self.explicit_ops % 2 == 1 {
                cb = cb.plain_method("explicitOdd", |s| {
                    s.explicit_lock(&format!("{pkg}.RLodd"));
                });
            }
            cb.done();
        }

        // Filler code to reach the LOC target: plain compute methods.
        let mut program_so_far = 0usize;
        {
            // Estimate current LOC cheaply by building incrementally is
            // awkward; instead compute after the fact and top up below.
        }
        let partial = b.build();
        program_so_far += partial.stats().loc;
        let mut b2 = ProgramBuilder::new();
        let missing = self.loc.saturating_sub(program_so_far);
        // Each filler method contributes ~(stmts + 2) LOC, each class +2.
        let stmts_per_method = 40;
        let methods_per_class = 12;
        let loc_per_class = 2 + methods_per_class * (stmts_per_method + 2);
        let filler_classes = missing / loc_per_class;
        for ci in 0..filler_classes {
            let mut cb = b2.class(&format!("{pkg}.filler.C{ci}"));
            for mi in 0..methods_per_class {
                cb = cb.plain_method(&format!("compute{mi}"), |s| {
                    for _ in 0..stmts_per_method {
                        s.work(1);
                    }
                });
            }
            cb.done();
        }
        let filler = b2.build();

        let mut program = partial;
        program.extend(filler.iter().cloned());
        program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use communix_analysis::NestingAnalyzer;
    use communix_bytecode::LoweredProgram;

    #[test]
    fn scaled_profile_generation_matches_targets() {
        let p = JBOSS.scaled(0.05);
        let program = p.generate();
        let stats = program.stats();
        assert_eq!(stats.sync_blocks_and_methods, p.sync_sites);
        assert_eq!(stats.explicit_sync_ops, p.explicit_ops);
        // LOC within 10% of target (filler granularity).
        let ratio = stats.loc as f64 / p.loc as f64;
        assert!((0.85..=1.1).contains(&ratio), "loc ratio {ratio}");
    }

    #[test]
    fn nesting_analysis_reproduces_profile_counts() {
        let p = LIMEWIRE.scaled(0.05);
        let program = p.generate();
        let lowered = LoweredProgram::lower(&program);
        let report = NestingAnalyzer::new(&lowered).analyze();
        assert_eq!(report.total_count(), p.sync_sites);
        assert_eq!(report.analyzed_count(), p.analyzed);
        assert_eq!(report.nested().len(), p.nested);
    }

    #[test]
    fn all_profiles_generate_at_small_scale() {
        for prof in ALL_PROFILES {
            let p = prof.scaled(0.02);
            let program = p.generate();
            assert!(!program.is_empty(), "{}", prof.name);
        }
    }

    #[test]
    fn vuze_explicit_ops_scale_to_zero_gracefully() {
        let p = VUZE.scaled(0.01);
        let program = p.generate();
        assert_eq!(program.stats().explicit_sync_ops, p.explicit_ops);
    }

    #[test]
    fn profile_constants_match_paper() {
        assert_eq!(JBOSS.loc, 636_895);
        assert_eq!(JBOSS.sync_sites, 1_898);
        assert_eq!(JBOSS.nested, 249);
        assert_eq!(JBOSS.analyzed, 844);
        assert_eq!(LIMEWIRE.explicit_ops, 189);
        assert_eq!(VUZE.sync_sites, 3_653);
    }
}
