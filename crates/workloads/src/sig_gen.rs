//! Deterministic signature generators.
//!
//! Two kinds of synthetic signatures drive the evaluation:
//!
//! * **Random signatures** ([`SigGen::random_signature`]) — structurally
//!   realistic (two entries, deep hashed stacks, ≈1.7 KB serialized, the
//!   size the paper reports) but referencing synthetic classes. These
//!   load the server in Figures 2 and 3, where only size and identity
//!   matter.
//! * **Application-valid signatures** ([`SigGen::valid_remote_sigs`]) —
//!   signatures that *pass the Communix agent's full validation* against
//!   a given program: every frame carries the correct bytecode hash of a
//!   loaded class, outer stacks are ≥ 5 deep and end at genuinely nested
//!   synchronized sites. These seed the local repository in Figure 4's
//!   agent start-up measurements, with multiple manifestation variants
//!   per bug so the generalization path is exercised too.

use communix_analysis::NestingReport;
use communix_bytecode::{Program, SyncSite};
use communix_crypto::{sha256, Digest};
use communix_dimmunix::{CallStack, Frame, SigEntry, Signature};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic signature generator.
#[derive(Debug)]
pub struct SigGen {
    rng: StdRng,
    counter: u64,
}

impl SigGen {
    /// Creates a generator; equal seeds give equal output streams.
    pub fn new(seed: u64) -> Self {
        SigGen {
            rng: StdRng::seed_from_u64(seed),
            counter: 0,
        }
    }

    /// A random, structurally realistic signature: two threads, outer
    /// stacks of depth 8, inner stacks of depth 2, every frame hashed.
    /// Serialized size is ≈1.7 KB, matching §IV-A. Distinct calls yield
    /// signatures with disjoint top frames (no accidental adjacency).
    pub fn random_signature(&mut self) -> Signature {
        let id = self.counter;
        self.counter += 1;
        let pkg: u32 = self.rng.gen_range(0..50);
        let mk_stack = |gen: &mut SigGen, role: u32, depth: usize| -> CallStack {
            (0..depth)
                .map(|d| {
                    let class = format!("srv.p{pkg}.C{}", gen.rng.gen_range(0..40));
                    let method = format!("m{}", gen.rng.gen_range(0..30));
                    // The top frame's line encodes (id, role) so top
                    // frames never collide across signatures.
                    let line = if d + 1 == depth {
                        (id as u32) * 10 + role
                    } else {
                        gen.rng.gen_range(1..5000)
                    };
                    let hash = sha256(format!("bytecode:{class}:{id}").as_bytes());
                    Frame::with_hash(class, method, line, hash)
                })
                .collect()
        };
        let outer1 = mk_stack(self, 0, 8);
        let inner1 = mk_stack(self, 1, 2);
        let outer2 = mk_stack(self, 2, 8);
        let inner2 = mk_stack(self, 3, 2);
        Signature::local(vec![
            SigEntry::new(outer1, inner1),
            SigEntry::new(outer2, inner2),
        ])
    }

    /// A batch of [`SigGen::random_signature`]s.
    pub fn random_batch(&mut self, n: usize) -> Vec<Signature> {
        (0..n).map(|_| self.random_signature()).collect()
    }

    /// A batch of [`SigGen::random_signature`]s serialized to text — the
    /// form an `ADD_BATCH` carries on the wire (benchmark drivers batch
    /// these without re-serializing in the timed region).
    pub fn random_batch_texts(&mut self, n: usize) -> Vec<String> {
        (0..n)
            .map(|_| self.random_signature().to_string())
            .collect()
    }

    /// Generates `n` remote signatures that pass the agent's validation
    /// against `program` (hashes match, outer depth ≥ 5, outer tops are
    /// nested sites per `report`).
    ///
    /// Signatures cycle through the program's nested sites in pairs (one
    /// *bug* per site pair); successive signatures for the same bug are
    /// different *manifestations* — identical in their five top frames,
    /// different below — so the agent's generalization merges them.
    ///
    /// # Panics
    ///
    /// Panics if `report` classifies fewer than two sites as nested.
    pub fn valid_remote_sigs(
        &mut self,
        program: &Program,
        report: &NestingReport,
        n: usize,
    ) -> Vec<Signature> {
        let nested: Vec<&SyncSite> = report.nested();
        assert!(
            nested.len() >= 2,
            "need at least two nested sites, found {}",
            nested.len()
        );
        let bugs = nested.len() / 2;
        let hash_of = |site: &SyncSite| -> Digest {
            program
                .class_by_name(&site.class)
                .expect("nested site's class exists")
                .bytecode_hash()
        };
        (0..n)
            .map(|i| {
                let bug = i % bugs;
                let variant = (i / bugs) as u32;
                let site_a = nested[2 * bug];
                let site_b = nested[2 * bug + 1];
                let entry = |site: &SyncSite, salt: u32| -> SigEntry {
                    let h = hash_of(site);
                    let class = site.class.as_str();
                    let method = site.method.as_ref();
                    // Variant-specific bottom frame, then four fixed
                    // filler frames, then the nested top frame: depth 6,
                    // common suffix (across variants) of depth 5.
                    let mut frames = vec![Frame::with_hash(class, method, 90_000 + variant, h)];
                    frames.extend(
                        (0..4).map(|d| Frame::with_hash(class, method, 80_000 + salt * 10 + d, h)),
                    );
                    frames.push(Frame::with_hash(class, method, site.line, h));
                    let outer: CallStack = frames.into_iter().collect();
                    let inner: CallStack = vec![Frame::with_hash(class, method, 70_000 + salt, h)]
                        .into_iter()
                        .collect();
                    SigEntry::new(outer, inner)
                };
                Signature::remote(vec![entry(site_a, 1), entry(site_b, 2)])
            })
            .collect()
    }

    /// Like [`SigGen::valid_remote_sigs`], but serialized to text (the
    /// form the client repository stores).
    pub fn valid_remote_sig_texts(
        &mut self,
        program: &Program,
        report: &NestingReport,
        n: usize,
    ) -> Vec<String> {
        self.valid_remote_sigs(program, report, n)
            .into_iter()
            .map(|s| s.to_string())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::JBOSS;
    use communix_analysis::NestingAnalyzer;
    use communix_bytecode::LoweredProgram;

    #[test]
    fn random_signatures_are_about_paper_size() {
        let mut g = SigGen::new(7);
        for _ in 0..20 {
            let s = g.random_signature();
            let size = s.size_bytes();
            assert!(
                (1_000..3_000).contains(&size),
                "signature size {size} outside the ≈1.7 KB band"
            );
        }
    }

    #[test]
    fn random_signatures_are_distinct_and_parse() {
        let mut g = SigGen::new(7);
        let a = g.random_signature();
        let b = g.random_signature();
        assert_ne!(a, b);
        assert!(!a.adjacent_to(&b), "random signatures must not collide");
        assert_eq!(a.to_string().parse::<Signature>().unwrap(), a);
    }

    #[test]
    fn generator_is_deterministic() {
        let mut g1 = SigGen::new(42);
        let mut g2 = SigGen::new(42);
        assert_eq!(g1.random_batch(5), g2.random_batch(5));
        let mut g3 = SigGen::new(43);
        assert_ne!(g1.random_batch(1), g3.random_batch(1));
    }

    #[test]
    fn valid_sigs_pass_agent_validation() {
        use communix_agent::{SignatureValidator, ValidatorConfig};
        let program = JBOSS.scaled(0.05).generate();
        let lowered = LoweredProgram::lower(&program);
        let report = NestingAnalyzer::new(&lowered).analyze();
        let mut g = SigGen::new(1);
        let sigs = g.valid_remote_sigs(&program, &report, 10);
        let hashes: Vec<(String, Digest)> = program
            .hash_index()
            .into_iter()
            .map(|(k, v)| (k.as_str().to_string(), v))
            .collect();
        let v = SignatureValidator::new(hashes, Some(&report), ValidatorConfig::default());
        for (i, sig) in sigs.iter().enumerate() {
            assert!(v.validate(sig).is_ok(), "signature {i} must validate");
        }
    }

    #[test]
    fn variants_of_same_bug_merge_to_depth_five() {
        let program = JBOSS.scaled(0.05).generate();
        let lowered = LoweredProgram::lower(&program);
        let report = NestingAnalyzer::new(&lowered).analyze();
        let bugs = report.nested().len() / 2;
        let mut g = SigGen::new(1);
        // n = 2 * bugs gives exactly two variants of every bug.
        let sigs = g.valid_remote_sigs(&program, &report, 2 * bugs);
        let (a, b) = (&sigs[0], &sigs[bugs]);
        assert!(a.same_bug(b));
        assert_ne!(a.entries(), b.entries());
        let merged = a.merge(b, 5).expect("variants must merge at depth 5");
        assert_eq!(merged.min_outer_depth(), 5);
    }

    #[test]
    fn different_bugs_do_not_merge() {
        let program = JBOSS.scaled(0.05).generate();
        let lowered = LoweredProgram::lower(&program);
        let report = NestingAnalyzer::new(&lowered).analyze();
        let mut g = SigGen::new(1);
        let sigs = g.valid_remote_sigs(&program, &report, 2);
        assert!(!sigs[0].same_bug(&sigs[1]));
        assert!(sigs[0].merge(&sigs[1], 5).is_none());
    }

    #[test]
    fn sig_texts_roundtrip() {
        let program = JBOSS.scaled(0.05).generate();
        let lowered = LoweredProgram::lower(&program);
        let report = NestingAnalyzer::new(&lowered).analyze();
        let mut g = SigGen::new(1);
        let texts = g.valid_remote_sig_texts(&program, &report, 3);
        for t in texts {
            assert!(t.parse::<Signature>().is_ok());
        }
    }
}
