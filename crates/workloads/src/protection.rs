//! The §IV-C time-to-full-protection model.
//!
//! "If there are Nd possible deadlock manifestations in A and it takes on
//! average t days for a user to experience one manifestation, A will be
//! deadlock-free in roughly t·Nd days, if Dimmunix alone is used. If
//! Communix is used, all the users of A will have A deadlock-free in
//! roughly t·Nd/Nu days."
//!
//! The paper presents this as a purely theoretical estimate. We simulate
//! the stated model — manifestation encounters arrive per user as a
//! Poisson process with mean inter-arrival `t` days — and check the
//! Monte-Carlo means against the closed forms. Two encounter semantics
//! are provided:
//!
//! * [`EncounterModel::DistinctRuns`] — the paper's idealization ("users
//!   that run A in *different ways*"): every encounter reveals a
//!   manifestation nobody has reported yet, until all `Nd` are known.
//!   Expected coverage time is exactly `t·Nd/Nu`.
//! * [`EncounterModel::UniformRandom`] — each encounter draws a
//!   manifestation uniformly at random (users overlap), which inflates
//!   coverage time by the coupon-collector factor `H(Nd)`; an ablation
//!   showing how much the "different ways" assumption matters.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How a manifestation encounter maps to a manifestation identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncounterModel {
    /// Every encounter reveals a not-yet-reported manifestation (the
    /// paper's "users run A in different ways" idealization).
    DistinctRuns,
    /// Every encounter draws uniformly from all `Nd` manifestations
    /// (users may rediscover known ones).
    UniformRandom,
}

/// Parameters of the §IV-C experiment.
#[derive(Debug, Clone, Copy)]
pub struct ProtectionParams {
    /// Number of users running the application (`Nu`).
    pub users: usize,
    /// Number of deadlock manifestations (`Nd`).
    pub manifestations: usize,
    /// Mean days for one user to experience one manifestation (`t`).
    pub mean_days: f64,
    /// Encounter semantics.
    pub model: EncounterModel,
    /// Monte-Carlo trials.
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProtectionParams {
    fn default() -> Self {
        ProtectionParams {
            users: 10,
            manifestations: 20,
            mean_days: 2.0,
            model: EncounterModel::DistinctRuns,
            trials: 200,
            seed: 0xC0FFEE,
        }
    }
}

/// Result of the §IV-C simulation.
#[derive(Debug, Clone, Copy)]
pub struct ProtectionReport {
    /// The parameters that produced this report.
    pub params: ProtectionParamsSummary,
    /// Mean days until a *single* user (Dimmunix alone) has experienced
    /// all manifestations.
    pub dimmunix_days: f64,
    /// Mean days until the *community* (Communix) has experienced all
    /// manifestations — after which every user is protected.
    pub communix_days: f64,
    /// The paper's closed form `t·Nd`.
    pub closed_form_dimmunix: f64,
    /// The paper's closed form `t·Nd/Nu`.
    pub closed_form_communix: f64,
}

/// Copyable digest of [`ProtectionParams`] embedded in the report.
#[derive(Debug, Clone, Copy)]
pub struct ProtectionParamsSummary {
    /// `Nu`.
    pub users: usize,
    /// `Nd`.
    pub manifestations: usize,
    /// `t`.
    pub mean_days: f64,
    /// Encounter semantics used.
    pub model: EncounterModel,
}

impl ProtectionReport {
    /// Communix's speed-up over Dimmunix alone (simulated means).
    pub fn speedup(&self) -> f64 {
        self.dimmunix_days / self.communix_days
    }
}

/// Samples an exponential inter-arrival with mean `mean` days.
fn exp_sample(rng: &mut StdRng, mean: f64) -> f64 {
    // Inverse-CDF sampling; gen::<f64>() ∈ [0,1).
    let u: f64 = rng.gen::<f64>();
    -mean * (1.0 - u).ln()
}

/// Runs the Monte-Carlo simulation of §IV-C.
///
/// # Panics
///
/// Panics if `users`, `manifestations` or `trials` is zero, or
/// `mean_days` is not positive.
pub fn simulate(params: &ProtectionParams) -> ProtectionReport {
    assert!(params.users > 0, "need at least one user");
    assert!(params.manifestations > 0, "need at least one manifestation");
    assert!(params.trials > 0, "need at least one trial");
    assert!(params.mean_days > 0.0, "mean_days must be positive");
    let mut rng = StdRng::seed_from_u64(params.seed);

    let mut dimmunix_total = 0.0;
    let mut communix_total = 0.0;
    for _ in 0..params.trials {
        dimmunix_total += single_user_coverage(&mut rng, params);
        communix_total += community_coverage(&mut rng, params);
    }
    let n = params.trials as f64;
    let nd = params.manifestations as f64;
    let nu = params.users as f64;
    ProtectionReport {
        params: ProtectionParamsSummary {
            users: params.users,
            manifestations: params.manifestations,
            mean_days: params.mean_days,
            model: params.model,
        },
        dimmunix_days: dimmunix_total / n,
        communix_days: communix_total / n,
        closed_form_dimmunix: params.mean_days * nd,
        closed_form_communix: params.mean_days * nd / nu,
    }
}

/// Days until one user, alone, has seen every manifestation. A single
/// user's encounters always reveal manifestations new *to them*, so this
/// is a sum of `Nd` exponentials regardless of the encounter model.
fn single_user_coverage(rng: &mut StdRng, params: &ProtectionParams) -> f64 {
    match params.model {
        EncounterModel::DistinctRuns => (0..params.manifestations)
            .map(|_| exp_sample(rng, params.mean_days))
            .sum(),
        EncounterModel::UniformRandom => {
            // Coupon collector: keep drawing until all seen.
            let nd = params.manifestations;
            let mut seen = vec![false; nd];
            let mut remaining = nd;
            let mut time = 0.0;
            while remaining > 0 {
                time += exp_sample(rng, params.mean_days);
                let pick = rng.gen_range(0..nd);
                if !seen[pick] {
                    seen[pick] = true;
                    remaining -= 1;
                }
            }
            time
        }
    }
}

/// Days until the union of all users' encounters covers every
/// manifestation. Encounters arrive globally at aggregate rate `Nu/t`
/// (superposition of the per-user Poisson processes).
fn community_coverage(rng: &mut StdRng, params: &ProtectionParams) -> f64 {
    let nd = params.manifestations;
    let aggregate_mean = params.mean_days / params.users as f64;
    match params.model {
        EncounterModel::DistinctRuns => (0..nd).map(|_| exp_sample(rng, aggregate_mean)).sum(),
        EncounterModel::UniformRandom => {
            let mut seen = vec![false; nd];
            let mut remaining = nd;
            let mut time = 0.0;
            while remaining > 0 {
                time += exp_sample(rng, aggregate_mean);
                let pick = rng.gen_range(0..nd);
                if !seen[pick] {
                    seen[pick] = true;
                    remaining -= 1;
                }
            }
            time
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(users: usize, model: EncounterModel) -> ProtectionParams {
        ProtectionParams {
            users,
            manifestations: 20,
            mean_days: 2.0,
            model,
            trials: 400,
            seed: 99,
        }
    }

    /// Relative error tolerance for Monte-Carlo means (400 trials of a
    /// sum of 20 exponentials has std-err ≈ 1.1% of the mean).
    const TOL: f64 = 0.10;

    #[test]
    fn distinct_runs_matches_closed_forms() {
        let p = params(10, EncounterModel::DistinctRuns);
        let r = simulate(&p);
        assert!(
            (r.dimmunix_days - r.closed_form_dimmunix).abs() < TOL * r.closed_form_dimmunix,
            "dimmunix {} vs closed {}",
            r.dimmunix_days,
            r.closed_form_dimmunix
        );
        assert!(
            (r.communix_days - r.closed_form_communix).abs() < TOL * r.closed_form_communix,
            "communix {} vs closed {}",
            r.communix_days,
            r.closed_form_communix
        );
    }

    #[test]
    fn speedup_scales_with_users() {
        let r10 = simulate(&params(10, EncounterModel::DistinctRuns));
        let r100 = simulate(&params(100, EncounterModel::DistinctRuns));
        // Speed-up ≈ Nu.
        assert!(
            (r10.speedup() - 10.0).abs() < 10.0 * 2.0 * TOL,
            "{}",
            r10.speedup()
        );
        assert!(
            (r100.speedup() - 100.0).abs() < 100.0 * 2.0 * TOL,
            "{}",
            r100.speedup()
        );
    }

    #[test]
    fn one_user_gains_nothing() {
        let r = simulate(&params(1, EncounterModel::DistinctRuns));
        assert!((r.speedup() - 1.0).abs() < 2.0 * TOL);
    }

    #[test]
    fn uniform_random_pays_coupon_collector_factor() {
        let d = simulate(&params(10, EncounterModel::DistinctRuns));
        let u = simulate(&params(10, EncounterModel::UniformRandom));
        // H(20) ≈ 3.6: uniform rediscovery should cost noticeably more.
        let h20: f64 = (1..=20).map(|k| 1.0 / k as f64).sum();
        let expected_ratio = h20 * 20.0 / 20.0; // per-manifestation vs harmonic sum
        let ratio = u.communix_days / d.communix_days;
        assert!(
            ratio > 1.5 && ratio < expected_ratio * 1.3,
            "uniform/distinct ratio {ratio}, H(20)·Nd/Nd = {expected_ratio}"
        );
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let a = simulate(&params(10, EncounterModel::DistinctRuns));
        let b = simulate(&params(10, EncounterModel::DistinctRuns));
        assert_eq!(a.dimmunix_days.to_bits(), b.dimmunix_days.to_bits());
        assert_eq!(a.communix_days.to_bits(), b.communix_days.to_bits());
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn zero_users_rejected() {
        let mut p = params(1, EncounterModel::DistinctRuns);
        p.users = 0;
        let _ = simulate(&p);
    }

    #[test]
    fn report_carries_params() {
        let r = simulate(&params(7, EncounterModel::DistinctRuns));
        assert_eq!(r.params.users, 7);
        assert_eq!(r.params.manifestations, 20);
    }
}
