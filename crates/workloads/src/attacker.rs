//! Attacker models (§III-C1, §IV-B).
//!
//! Two families of attack are modelled:
//!
//! * **Slow-down attacks** against Dimmunix's avoidance: fake signatures
//!   whose outer stacks cover the nested synchronized sections on an
//!   application's critical path. The deeper the stacks, the fewer
//!   execution flows they match: the agent's depth-≥5 rule caps the
//!   damage at the depth-5 level (Table II: 8–40%), while depth-1
//!   signatures — which the agent rejects — would cost far more (>100%).
//! * **Flooding attacks** against the server and the history: bursts of
//!   fake signatures meant to bloat databases and histories. Contained by
//!   the encrypted-id requirement, the adjacency rule, the 10-per-day
//!   budget, and the nesting check (at most N signatures stick, where N
//!   is the number of nested sync sites).

use communix_crypto::sha256;
use communix_dimmunix::{CallStack, Frame, SigEntry, Signature};

use crate::drivers::Section;

/// Outer-stack depth of the generated attack signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackDepth {
    /// Depth-5 stacks (the deepest the agent will accept from an
    /// attacker exploiting the generalization floor).
    Five,
    /// Depth-1 stacks (the §IV-B "considerable overhead" attack; the
    /// agent rejects these, this variant exists to measure what they
    /// *would* cost).
    One,
}

/// A set of malicious signatures plus bookkeeping about what they cover.
#[derive(Debug, Clone)]
pub struct AttackPlan {
    sigs: Vec<Signature>,
    covered_sections: usize,
    depth: AttackDepth,
}

impl AttackPlan {
    /// The signatures, ready to be injected into a history or sent to a
    /// server.
    pub fn signatures(&self) -> &[Signature] {
        &self.sigs
    }

    /// Consumes the plan, yielding the signatures.
    pub fn into_signatures(self) -> Vec<Signature> {
        self.sigs
    }

    /// Number of signatures in the plan.
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }

    /// Number of distinct sections the plan's outer stacks cover.
    pub fn covered_sections(&self) -> usize {
        self.covered_sections
    }

    /// The configured stack depth.
    pub fn depth(&self) -> AttackDepth {
        self.depth
    }

    /// The signatures as a [`communix_dimmunix::History`] (the state an
    /// application ends up in if all of them pass validation).
    pub fn as_history(&self) -> communix_dimmunix::History {
        self.sigs.iter().cloned().collect()
    }
}

/// Builds attack plans.
#[derive(Debug, Clone, Copy, Default)]
pub struct AttackerFactory;

impl AttackerFactory {
    /// Creates a factory.
    pub fn new() -> Self {
        AttackerFactory
    }

    /// The Table II attack: `count` two-entry signatures pairing up the
    /// given critical-path sections, with outer stacks of the chosen
    /// depth. Sections are paired round-robin so every section is
    /// covered ("these outer calls are on the critical path, i.e., more
    /// than 99% of the nested synchronized blocks/methods are executed
    /// with these call stacks").
    ///
    /// # Panics
    ///
    /// Panics if `sections` has fewer than two entries.
    pub fn critical_path_attack(
        &self,
        sections: &[&Section],
        count: usize,
        depth: AttackDepth,
    ) -> AttackPlan {
        assert!(sections.len() >= 2, "need at least two sections to pair");
        let stack = |s: &Section| -> CallStack {
            match depth {
                AttackDepth::Five => s.critical_stack.clone(),
                AttackDepth::One => s.top_only_stack.clone(),
            }
        };
        let mut sigs = Vec::with_capacity(count);
        let mut covered = std::collections::BTreeSet::new();
        for k in 0..count {
            let a = sections[k % sections.len()];
            let b = sections[(k + 1) % sections.len()];
            covered.insert(a.index);
            covered.insert(b.index);
            sigs.push(Signature::remote(vec![
                SigEntry::new(stack(a), a.inner_stack.clone()),
                SigEntry::new(stack(b), b.inner_stack.clone()),
            ]));
        }
        AttackPlan {
            sigs,
            covered_sections: covered.len(),
            depth,
        }
    }

    /// The off-critical-path control: signatures over sections the
    /// workload never executes. The paper reports < 2% overhead for
    /// these.
    ///
    /// # Panics
    ///
    /// Panics if `cold_sections` has fewer than two entries.
    pub fn off_path_attack(&self, cold_sections: &[&Section], count: usize) -> AttackPlan {
        self.critical_path_attack(cold_sections, count, AttackDepth::Five)
    }

    /// A flooding signature: syntactically valid, two entries, depth-6
    /// outer stacks, with top frames unique to `(user_tag, k)` so that
    /// distinct floods are neither duplicates nor adjacent (each one
    /// costs the attacker one unit of daily budget).
    pub fn flood_signature(&self, user_tag: u64, k: u64) -> Signature {
        let mk_stack = |role: &str, salt: u64| -> CallStack {
            (0..6)
                .map(|d| {
                    Frame::with_hash(
                        format!("atk.u{user_tag}.Flood{k}"),
                        format!("{role}{d}"),
                        (salt * 100 + d) as u32,
                        sha256(format!("flood:{user_tag}:{k}:{role}:{d}").as_bytes()),
                    )
                })
                .collect()
        };
        Signature::remote(vec![
            SigEntry::new(mk_stack("out_a", 1), mk_stack("in_a", 2)),
            SigEntry::new(mk_stack("out_b", 3), mk_stack("in_b", 4)),
        ])
    }

    /// A signature *adjacent* to [`AttackerFactory::flood_signature`]
    /// `(user_tag, k)`: it shares that signature's first entry (same top
    /// frames) but has a fresh second entry. The server must reject it
    /// when sent by the same user (§III-C2).
    pub fn adjacent_flood_signature(&self, user_tag: u64, k: u64) -> Signature {
        let base = self.flood_signature(user_tag, k);
        let fresh = self.flood_signature(user_tag ^ 0xDEAD_BEEF, k.wrapping_add(7777));
        Signature::remote(vec![base.entries()[0].clone(), fresh.entries()[1].clone()])
    }

    /// The §IV-B flood volume: `attackers × ids_per_attacker × 10`
    /// signatures, tagged by (attacker, id, slot) — what 100 attackers
    /// holding 5 ids each can push through the server in one day.
    pub fn daily_flood(
        &self,
        attackers: u64,
        ids_per_attacker: u64,
        per_id_budget: u64,
    ) -> Vec<(u64, Signature)> {
        let mut out = Vec::new();
        for a in 0..attackers {
            for i in 0..ids_per_attacker {
                let user = a * 1000 + i;
                for s in 0..per_id_budget {
                    out.push((user, self.flood_signature(user, s)));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::{DriverApp, DriverProfile};
    use communix_dimmunix::History;

    fn tiny() -> DriverProfile {
        DriverProfile {
            app: "Tiny",
            benchmark: "unit",
            workers: 4,
            iterations: 6,
            sections: 4,
            cold_sections: 2,
            section_work: 2,
            inner_work: 1,
            outside_work: 3,
            paper_overhead_pct: 0,
        }
    }

    #[test]
    fn critical_attack_covers_all_sections() {
        let app = DriverApp::build(&tiny());
        let hot = app.hot_sections();
        let plan = AttackerFactory::new().critical_path_attack(&hot, 8, AttackDepth::Five);
        assert_eq!(plan.len(), 8);
        assert_eq!(plan.covered_sections(), 4);
        for sig in plan.signatures() {
            assert_eq!(sig.min_outer_depth(), 5);
        }
    }

    #[test]
    fn depth_one_attack_has_shallow_stacks() {
        let app = DriverApp::build(&tiny());
        let hot = app.hot_sections();
        let plan = AttackerFactory::new().critical_path_attack(&hot, 4, AttackDepth::One);
        for sig in plan.signatures() {
            assert_eq!(sig.min_outer_depth(), 1);
        }
    }

    #[test]
    fn attack_slows_down_the_workload() {
        // The heart of Table II: depth-5 critical-path signatures inflate
        // completion time; depth-1 inflates it much more; off-path
        // signatures cost (almost) nothing.
        let app = DriverApp::build(&tiny());
        let factory = AttackerFactory::new();
        let hot = app.hot_sections();
        let cold = app.cold_sections();

        let d5 = app.overhead_vs_vanilla(
            factory
                .critical_path_attack(&hot, 8, AttackDepth::Five)
                .as_history(),
        );
        let d1 = app.overhead_vs_vanilla(
            factory
                .critical_path_attack(&hot, 8, AttackDepth::One)
                .as_history(),
        );
        let off = app.overhead_vs_vanilla(factory.off_path_attack(&cold, 4).as_history());

        assert!(d5 > 0.02, "depth-5 attack must visibly slow down: {d5}");
        assert!(
            d1 > d5,
            "depth-1 must hurt more than depth-5: d1={d1} d5={d5}"
        );
        assert!(off < 0.02, "off-path attack must be negligible: {off}");
    }

    #[test]
    fn flood_signatures_are_distinct_and_non_adjacent() {
        let f = AttackerFactory::new();
        let a = f.flood_signature(1, 0);
        let b = f.flood_signature(1, 1);
        let c = f.flood_signature(2, 0);
        assert_ne!(a, b);
        assert!(!a.adjacent_to(&b), "distinct floods must not be adjacent");
        assert!(!a.adjacent_to(&c));
        // And they parse back from text (they must survive the wire).
        let rt: Signature = a.to_string().parse().unwrap();
        assert_eq!(rt, a);
    }

    #[test]
    fn adjacent_flood_is_adjacent_to_its_base() {
        let f = AttackerFactory::new();
        let base = f.flood_signature(3, 5);
        let adj = f.adjacent_flood_signature(3, 5);
        assert!(base.adjacent_to(&adj));
        assert!(adj.adjacent_to(&base));
    }

    #[test]
    fn daily_flood_volume_matches_paper_arithmetic() {
        // "100 attackers … 5 ids each … only up to 100*5*10 = 5,000
        // signatures in 1 day" — generated at small scale here.
        let f = AttackerFactory::new();
        let flood = f.daily_flood(10, 5, 10);
        assert_eq!(flood.len(), 10 * 5 * 10);
        // Distinct users appear.
        let users: std::collections::BTreeSet<u64> = flood.iter().map(|(u, _)| *u).collect();
        assert_eq!(users.len(), 50);
    }

    #[test]
    fn attack_history_roundtrip() {
        let app = DriverApp::build(&tiny());
        let hot = app.hot_sections();
        let plan = AttackerFactory::new().critical_path_attack(&hot, 3, AttackDepth::Five);
        let h: History = plan.as_history();
        assert_eq!(h.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least two sections")]
    fn pairing_needs_two_sections() {
        let app = DriverApp::build(&tiny());
        let one = [&app.sections()[0]];
        let _ = AttackerFactory::new().critical_path_attack(&one, 2, AttackDepth::Five);
    }
}
